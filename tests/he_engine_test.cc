// Happy Eyeballs engine tests: the full state machine across DNS arrival
// orders, resolution delay, CAD staggering, deviations, caching, HEv3.
#include <gtest/gtest.h>

#include "capture/analysis.h"
#include "capture/capture.h"
#include "dns/auth_server.h"
#include "he/engine.h"
#include "simnet/network.h"

namespace lazyeye::he {
namespace {

using simnet::Family;
using simnet::IpAddress;
using simnet::Ipv4Address;
using simnet::Ipv6Address;

dns::DnsName N(const char* s) { return dns::DnsName::must_parse(s); }

struct EngineFixture : ::testing::Test {
  EngineFixture()
      : net{11}, client_host{net.add_host("client")},
        server_host{net.add_host("server")},
        dns_host{net.add_host("dns")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(IpAddress::must_parse("2001:db8::2"));
    server_host.add_address(IpAddress::must_parse("10.0.0.80"));
    server_host.add_address(IpAddress::must_parse("2001:db8::80"));
    dns_host.add_address(IpAddress::must_parse("10.0.0.53"));

    server_tcp = std::make_unique<transport::TcpStack>(server_host);
    server_tcp->listen(443);
    server_quic = std::make_unique<transport::QuicStack>(server_host);
    server_quic->listen(443);

    auth = std::make_unique<dns::AuthServer>(dns_host);
    zone = &auth->add_zone(N("he.lab"));
    zone->add_a(N("www.he.lab"), *Ipv4Address::parse("10.0.0.80"));
    zone->add_aaaa(N("www.he.lab"), *Ipv6Address::parse("2001:db8::80"));

    dns::StubOptions stub_options;
    stub_options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
    stub = std::make_unique<dns::StubResolver>(client_host, stub_options);
    client_tcp = std::make_unique<transport::TcpStack>(client_host);
    client_quic = std::make_unique<transport::QuicStack>(client_host);
    engine = std::make_unique<HappyEyeballsEngine>(
        client_host, *stub, *client_tcp, client_quic.get());
    cap = std::make_unique<capture::PacketCapture>(client_host);
  }

  /// Adds A/AAAA records for a (possibly param-carrying) name.
  void add_records(const dns::DnsName& name, int v6_count = 1,
                   int v4_count = 1, bool responsive = true) {
    for (int i = 0; i < v6_count; ++i) {
      const std::string addr = responsive
                                   ? "2001:db8::80"
                                   : "2001:db8:dead::" + std::to_string(i + 1);
      zone->add_aaaa(name, *Ipv6Address::parse(addr));
    }
    for (int i = 0; i < v4_count; ++i) {
      const std::string addr =
          responsive ? "10.0.0.80" : "10.9.9." + std::to_string(i + 1);
      zone->add_a(name, *Ipv4Address::parse(addr));
    }
  }

  HeResult run_connect(const dns::DnsName& name) {
    HeResult result;
    bool done = false;
    engine->connect(name, 443, [&](const HeResult& r) {
      result = r;
      done = true;
    });
    net.loop().run();
    EXPECT_TRUE(done);
    return result;
  }

  /// Times of kAttemptStarted events, with families.
  static std::vector<std::pair<SimTime, Family>> attempt_times(
      const HeResult& result) {
    std::vector<std::pair<SimTime, Family>> out;
    for (const auto& ev : result.trace) {
      if (ev.type == HeEvent::Type::kAttemptStarted) {
        out.emplace_back(ev.time, ev.address.family());
      }
    }
    return out;
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  simnet::Host& dns_host;
  std::unique_ptr<transport::TcpStack> server_tcp;
  std::unique_ptr<transport::QuicStack> server_quic;
  std::unique_ptr<dns::AuthServer> auth;
  dns::Zone* zone = nullptr;
  std::unique_ptr<dns::StubResolver> stub;
  std::unique_ptr<transport::TcpStack> client_tcp;
  std::unique_ptr<transport::QuicStack> client_quic;
  std::unique_ptr<HappyEyeballsEngine> engine;
  std::unique_ptr<capture::PacketCapture> cap;
};

TEST_F(EngineFixture, PrefersIpv6WhenHealthy) {
  engine->set_options(HeOptions::rfc8305());
  const auto result = run_connect(N("www.he.lab"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv6);
  // Only one attempt: IPv6 established before the CAD expired.
  EXPECT_EQ(attempt_times(result).size(), 1u);
  EXPECT_FALSE(capture::first_syn_time(*cap, Family::kIpv4));
}

TEST_F(EngineFixture, CadFallbackToV4WhenV6Slow) {
  // Delay IPv6 towards the client (server-side netem in the paper).
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(400)));
  HeOptions o = HeOptions::rfc8305();
  o.connection_attempt_delay = ms(250);
  engine->set_options(o);

  const auto result = run_connect(N("www.he.lab"));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv4);

  // The packet capture shows the CAD (paper methodology).
  const auto cad = capture::infer_cad(*cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, ms(250));
}

TEST_F(EngineFixture, V6WinsWhenDelayBelowCad) {
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(100)));
  HeOptions o = HeOptions::rfc8305();
  o.connection_attempt_delay = ms(250);
  engine->set_options(o);
  const auto result = run_connect(N("www.he.lab"));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv6);
  EXPECT_FALSE(capture::first_syn_time(*cap, Family::kIpv4));
}

TEST_F(EngineFixture, ResolutionDelayExpiryStartsV4) {
  const auto name = N("d200-aaaa.rd.he.lab");
  add_records(name);
  HeOptions o = HeOptions::rfc8305();  // RD = 50 ms
  engine->set_options(o);

  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv4);

  // The v4 SYN leaves ~50 ms after the A response arrived.
  bool rd_started = false;
  bool rd_expired = false;
  for (const auto& ev : result.trace) {
    if (ev.type == HeEvent::Type::kResolutionDelayStarted) rd_started = true;
    if (ev.type == HeEvent::Type::kResolutionDelayExpired) rd_expired = true;
  }
  EXPECT_TRUE(rd_started);
  EXPECT_TRUE(rd_expired);
  const auto attempts = attempt_times(result);
  ASSERT_FALSE(attempts.empty());
  EXPECT_EQ(attempts[0].second, Family::kIpv4);
  // A response at ~2*base_delay; attempt at +50 ms RD.
  EXPECT_EQ(attempts[0].first, 2 * net.base_delay() + ms(50));
}

TEST_F(EngineFixture, AaaaDuringResolutionDelayGoesStraightToV6) {
  const auto name = N("d20-aaaa.rd2.he.lab");
  add_records(name);
  engine->set_options(HeOptions::rfc8305());  // RD 50 ms > 20 ms AAAA delay
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv6);
  EXPECT_FALSE(capture::first_syn_time(*cap, Family::kIpv4));
}

TEST_F(EngineFixture, NoRdWaitsForAaaaIndefinitely) {
  // Chromium/Firefox §5.2: without RD the client waits for the AAAA answer
  // (here 600 ms) even though A arrived immediately.
  const auto name = N("d600-aaaa.nord.he.lab");
  add_records(name);
  HeOptions o = HeOptions::rfc8305();
  o.resolution_delay = std::nullopt;
  engine->set_options(o);
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv6);
  const auto v6_syn = capture::first_syn_time(*cap, Family::kIpv6);
  ASSERT_TRUE(v6_syn);
  EXPECT_GE(*v6_syn, ms(600));
}

TEST_F(EngineFixture, WaitForARecordDelaysV6Start) {
  // The §5.2 deviation: AAAA is in hand, but the client sits on it until
  // the A response (delayed 300 ms) arrives, then connects via IPv6.
  const auto name = N("d300-a.wfa.he.lab");
  add_records(name);
  HeOptions o = HeOptions::rfc8305();
  o.wait_for_a_record = true;
  engine->set_options(o);
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv6);
  const auto gap = capture::a_response_to_v6_syn_gap(*cap);
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, SimTime{0});  // fired immediately after A arrived
  const auto v6_syn = capture::first_syn_time(*cap, Family::kIpv6);
  EXPECT_GE(*v6_syn, ms(300));
}

TEST_F(EngineFixture, FailOnATimeoutKillsSession) {
  // Chrome/Firefox complete failure (§5.2): A delayed beyond the resolver
  // timeout, IPv6 perfectly healthy.
  const auto name = N("d9000-a.fail.he.lab");
  add_records(name);
  dns::StubOptions fast;
  fast.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  fast.timeout = sec(1);
  fast.attempts_per_server = 1;
  dns::StubResolver fast_stub{client_host, fast};
  HappyEyeballsEngine chrome{client_host, fast_stub, *client_tcp};
  HeOptions o = HeOptions::rfc8305();
  o.resolution_delay = std::nullopt;
  o.wait_for_a_record = true;
  o.fail_on_a_timeout = true;
  chrome.set_options(o);

  HeResult result;
  chrome.connect(name, 443, [&](const HeResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "A lookup failed");
  // No connection attempt was ever made despite working IPv6.
  EXPECT_FALSE(capture::first_syn_time(*cap, Family::kIpv6));
}

TEST_F(EngineFixture, CurlStyleProceedsV6AfterATimeout) {
  const auto name = N("d9000-a.curl.he.lab");
  add_records(name);
  dns::StubOptions fast;
  fast.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  fast.timeout = sec(1);
  fast.attempts_per_server = 1;
  dns::StubResolver fast_stub{client_host, fast};
  HappyEyeballsEngine curl{client_host, fast_stub, *client_tcp};
  HeOptions o = HeOptions::rfc8305();
  o.resolution_delay = std::nullopt;
  o.wait_for_a_record = true;
  o.fail_on_a_timeout = false;
  curl.set_options(o);

  HeResult result;
  curl.connect(name, 443, [&](const HeResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv6);
  EXPECT_GE(result.completed, sec(1));  // waited out the resolver timeout
}

TEST_F(EngineFixture, NoFallbackNeverTouchesV4) {
  // wget: IPv6 addresses are unresponsive, yet IPv4 is never attempted.
  const auto name = N("broken6.he.lab");
  add_records(name, 1, 1, /*responsive=*/false);
  zone->add_a(name, *Ipv4Address::parse("10.0.0.80"));  // working v4 exists

  HeOptions o = HeOptions::none();
  o.tcp.syn_rto = ms(500);
  o.tcp.syn_retries = 1;
  o.overall_timeout = sec(10);
  engine->set_options(o);

  const auto result = run_connect(name);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(capture::first_syn_time(*cap, Family::kIpv6));
  EXPECT_FALSE(capture::first_syn_time(*cap, Family::kIpv4));
}

TEST_F(EngineFixture, SafariAddressSelectionAcrossTwentyAddresses) {
  const auto name = N("multi.he.lab");
  add_records(name, 10, 10, /*responsive=*/false);

  HeOptions o = HeOptions::rfc8305();
  o.first_address_family_count = 2;
  o.interlace = InterlaceMode::kFirstOtherThenRest;
  o.max_addresses_per_family = 10;
  o.connection_attempt_delay = ms(100);
  o.tcp.syn_rto = sec(30);  // attempts stay pending; stagger drives starts
  o.overall_timeout = sec(10);
  engine->set_options(o);

  const auto result = run_connect(name);
  EXPECT_FALSE(result.ok);  // everything unresponsive

  const auto attempts = capture::connection_attempts(*cap);
  ASSERT_EQ(attempts.size(), 20u);
  EXPECT_EQ(capture::distinct_destinations(attempts, Family::kIpv6), 10);
  EXPECT_EQ(capture::distinct_destinations(attempts, Family::kIpv4), 10);
  // Safari pattern: v6 v6 v4 then the remaining v6 block.
  EXPECT_EQ(attempts[0].family(), Family::kIpv6);
  EXPECT_EQ(attempts[1].family(), Family::kIpv6);
  EXPECT_EQ(attempts[2].family(), Family::kIpv4);
  for (int i = 3; i < 11; ++i) {
    EXPECT_EQ(attempts[static_cast<std::size_t>(i)].family(), Family::kIpv6);
  }
  // Attempts staggered by the CAD.
  EXPECT_EQ(attempts[1].first_syn - attempts[0].first_syn, ms(100));
}

TEST_F(EngineFixture, HEv1StyleOnlyOneAddressPerFamily) {
  const auto name = N("multi2.he.lab");
  add_records(name, 10, 10, /*responsive=*/false);

  HeOptions o = HeOptions::rfc6555();
  o.connection_attempt_delay = ms(300);
  o.tcp.syn_rto = ms(400);
  o.tcp.syn_retries = 1;
  o.overall_timeout = sec(20);
  engine->set_options(o);

  const auto result = run_connect(name);
  EXPECT_FALSE(result.ok);
  const auto attempts = capture::connection_attempts(*cap);
  // HEv1: one IPv6 and one IPv4 attempt, nothing else (Table 2 / Fig. 5).
  EXPECT_EQ(capture::distinct_destinations(attempts, Family::kIpv6), 1);
  EXPECT_EQ(capture::distinct_destinations(attempts, Family::kIpv4), 1);
}

TEST_F(EngineFixture, AttemptFailureStartsNextImmediately) {
  // First address refuses (RST, closed port on a live host); second works.
  const auto name = N("refuse.he.lab");
  simnet::Host& refuser = net.add_host("refuser");
  refuser.add_address(IpAddress::must_parse("2001:db8::81"));
  transport::TcpStack refuser_tcp{refuser};  // no listener: RSTs port 443
  zone->add_aaaa(name, *Ipv6Address::parse("2001:db8::81"));  // port closed
  zone->add_a(name, *Ipv4Address::parse("10.0.0.80"));

  HeOptions o = HeOptions::rfc8305();
  o.connection_attempt_delay = sec(1);  // long CAD: failure must preempt it
  engine->set_options(o);
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), Family::kIpv4);
  // RST arrives ~0.4 ms in; the v4 attempt follows immediately, far before
  // the 1 s CAD.
  EXPECT_LT(result.completed, ms(100));
}

TEST_F(EngineFixture, CacheHitSkipsDns) {
  engine->set_options(HeOptions::rfc8305());
  ASSERT_TRUE(run_connect(N("www.he.lab")).ok);
  const auto dns_queries_before = auth->query_log().size();

  const auto second = run_connect(N("www.he.lab"));
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(auth->query_log().size(), dns_queries_before);  // no new queries
  ASSERT_FALSE(second.trace.empty());
  EXPECT_EQ(second.trace.front().type, HeEvent::Type::kCacheHit);
}

TEST_F(EngineFixture, CacheExpiresAfterTtl) {
  engine->set_options(HeOptions::rfc8305());
  ASSERT_TRUE(run_connect(N("www.he.lab")).ok);
  net.loop().run_for(minutes(11));  // beyond the 10 min TTL
  const auto queries_before = auth->query_log().size();
  ASSERT_TRUE(run_connect(N("www.he.lab")).ok);
  EXPECT_GT(auth->query_log().size(), queries_before);  // resolved again
}

TEST_F(EngineFixture, StaleCacheFallsBackToFullAlgorithm) {
  engine->set_options(HeOptions::rfc8305());
  ASSERT_TRUE(run_connect(N("www.he.lab")).ok);

  // The cached IPv6 winner goes dark.
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8::80")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "v6 dark");

  HeOptions o = HeOptions::rfc8305();
  o.tcp.syn_rto = ms(250);
  o.tcp.syn_retries = 1;
  engine->set_options(o);
  const auto result = run_connect(N("www.he.lab"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv4);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().type, HeEvent::Type::kCacheHit);
}

TEST_F(EngineFixture, OverallTimeoutFailsSession) {
  const auto name = N("dark.he.lab");
  add_records(name, 1, 1, /*responsive=*/false);
  HeOptions o = HeOptions::rfc8305();
  o.tcp.syn_rto = sec(60);
  o.overall_timeout = sec(3);
  engine->set_options(o);
  const auto result = run_connect(name);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "overall timeout");
  EXPECT_EQ(result.elapsed(), sec(3));
}

TEST_F(EngineFixture, NxDomainFailsCleanly) {
  engine->set_options(HeOptions::rfc8305());
  const auto result = run_connect(N("missing.he.lab"));
  EXPECT_FALSE(result.ok);
}

TEST_F(EngineFixture, CancelSessionReportsCancelled) {
  engine->set_options(HeOptions::rfc8305());
  HeResult result;
  const auto id =
      engine->connect(N("www.he.lab"), 443, [&](const HeResult& r) {
        result = r;
      });
  engine->cancel(id);
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cancelled");
  EXPECT_EQ(engine->active_sessions(), 0u);
}

// ------------------------------------------------------------------ HEv3 ----

TEST_F(EngineFixture, HEv3RacesQuicFirst) {
  const auto name = N("www.he.lab");
  dns::SvcbRdata svcb;
  svcb.priority = 1;
  svcb.target = name;
  svcb.set_alpn({"h3", "h2"});
  zone->add(dns::ResourceRecord::svcb(name, svcb, /*https=*/true));

  engine->set_options(HeOptions::v3_draft());
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, transport::TransportProtocol::kQuic);
  EXPECT_EQ(result.family(), Family::kIpv6);
}

TEST_F(EngineFixture, HEv3FallsBackToTcpWhenNoQuicService) {
  const auto name = N("tcponly.he.lab");
  server_host.add_address(IpAddress::must_parse("2001:db8::82"));
  zone->add_aaaa(name, *Ipv6Address::parse("2001:db8::82"));
  dns::SvcbRdata svcb;
  svcb.priority = 1;
  svcb.target = name;
  svcb.set_alpn({"h3"});
  zone->add(dns::ResourceRecord::svcb(name, svcb, true));

  // No QUIC listener reachable for this address (server_quic listens, but
  // QUIC Initial packets to :82 still reach the same host; close the
  // listener to force TCP).
  server_quic->close_listener(443);
  // TCP on 443 still listens.
  HeOptions o = HeOptions::v3_draft();
  o.quic.initial_rto = ms(100);
  o.quic.max_retransmits = 0;
  engine->set_options(o);
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, transport::TransportProtocol::kTcp);
}

TEST_F(EngineFixture, HEv3UsesSvcbAddressHints) {
  const auto name = N("hints.he.lab");
  // No AAAA/A records at all: only an HTTPS record with hints.
  dns::SvcbRdata svcb;
  svcb.priority = 1;
  svcb.target = name;
  svcb.set_alpn({"h2"});
  svcb.set_ipv6_hints({*Ipv6Address::parse("2001:db8::80")});
  svcb.set_ipv4_hints({*Ipv4Address::parse("10.0.0.80")});
  zone->add(dns::ResourceRecord::svcb(name, svcb, true));

  HeOptions o = HeOptions::v3_draft();
  o.race_quic = false;
  engine->set_options(o);
  const auto result = run_connect(name);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv6);
}

TEST_F(EngineFixture, DynamicCadUsesHistory) {
  HeOptions o = HeOptions::rfc8305();
  o.dynamic_cad.enabled = true;
  o.dynamic_cad.minimum = ms(50);
  o.dynamic_cad.maximum = sec(2);
  o.dynamic_cad.rtt_multiplier = 100.0;
  o.dynamic_cad.no_history_default = sec(2);
  engine->set_options(o);

  // First connect on the healthy network builds RTT history (~0.4 ms).
  const auto first = run_connect(N("www.he.lab"));
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.family(), Family::kIpv6);
  ASSERT_TRUE(engine->smoothed_rtt());

  // IPv6 degrades to 400 ms. With history the dynamic CAD collapses to
  // clamp(100 * 0.4 ms) = 50 ms, so IPv4 wins; without history the 2 s
  // default would have let IPv6 win.
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(400)));
  engine->cache().clear();
  cap->clear();
  const auto second = run_connect(N("www.he.lab"));
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.family(), Family::kIpv4);
  const auto cad = capture::infer_cad(*cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, ms(50));
}

TEST_F(EngineFixture, TraceEventNamesAreStable) {
  EXPECT_STREQ(he_event_type_name(HeEvent::Type::kCacheHit), "cache-hit");
  EXPECT_STREQ(he_event_type_name(HeEvent::Type::kFailed), "failed");
}

TEST(HeOptionsValidateTest, AcceptsAllPresets) {
  EXPECT_TRUE(HeOptions::rfc6555().validate().ok());
  EXPECT_TRUE(HeOptions::rfc8305().validate().ok());
  EXPECT_TRUE(HeOptions::v3_draft().validate().ok());
  EXPECT_TRUE(HeOptions::none().validate().ok());
}

TEST(HeOptionsValidateTest, RejectsDegenerateParameters) {
  HeOptions o = HeOptions::rfc8305();
  o.first_address_family_count = 0;
  EXPECT_FALSE(o.validate().ok());

  o = HeOptions::rfc8305();
  o.max_addresses_per_family = 0;
  EXPECT_FALSE(o.validate().ok());

  o = HeOptions::rfc8305();
  o.resolution_delay = ms(-50);
  EXPECT_FALSE(o.validate().ok());
  o.resolution_delay = std::nullopt;  // "no RD" stays a valid configuration
  EXPECT_TRUE(o.validate().ok());

  o = HeOptions::rfc8305();
  o.connection_attempt_delay = ms(-250);
  EXPECT_FALSE(o.validate().ok());

  o = HeOptions::rfc8305();
  o.overall_timeout = SimTime{0};
  EXPECT_FALSE(o.validate().ok());
}

TEST_F(EngineFixture, InvalidConfigurationFailsTheSessionAtStart) {
  HeOptions o = HeOptions::rfc8305();
  o.first_address_family_count = 0;
  engine->set_options(o);

  const auto result = run_connect(N("www.he.lab"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("configuration"), std::string::npos);
  EXPECT_NE(result.error.find("first_address_family_count"),
            std::string::npos);
  EXPECT_EQ(engine->active_sessions(), 0u);  // session fully torn down

  // A negative resolution delay is caught the same way.
  o = HeOptions::rfc8305();
  o.resolution_delay = ms(-1);
  engine->set_options(o);
  const auto rd_result = run_connect(N("www.he.lab"));
  EXPECT_FALSE(rd_result.ok);
  EXPECT_NE(rd_result.error.find("resolution_delay"), std::string::npos);
}

}  // namespace
}  // namespace lazyeye::he
