// Address selection (RFC 8305 §4), outcome cache, and options presets.
#include <gtest/gtest.h>

#include "he/address_selection.h"
#include "he/cache.h"
#include "he/options.h"
#include "util/rng.h"

namespace lazyeye::he {
namespace {

using simnet::Family;
using simnet::IpAddress;

AddressCandidate v6(int i, std::optional<SimTime> rtt = std::nullopt,
                    bool ech = false) {
  return {IpAddress::must_parse("2001:db8::" + std::to_string(i)), rtt, ech};
}
AddressCandidate v4(int i, std::optional<SimTime> rtt = std::nullopt,
                    bool ech = false) {
  return {IpAddress::must_parse("10.0.0." + std::to_string(i)), rtt, ech};
}

std::vector<Family> families(const std::vector<AddressCandidate>& list) {
  std::vector<Family> out;
  for (const auto& c : list) out.push_back(c.address.family());
  return out;
}

TEST(AddressSelectionTest, AlternateFafc1) {
  SelectionInput input;
  input.ipv6 = {v6(1), v6(2), v6(3)};
  input.ipv4 = {v4(1), v4(2), v4(3)};
  HeOptions o = HeOptions::rfc8305();
  const auto out = select_addresses(input, o);
  EXPECT_EQ(families(out),
            (std::vector<Family>{Family::kIpv6, Family::kIpv4, Family::kIpv6,
                                 Family::kIpv4, Family::kIpv6, Family::kIpv4}));
}

TEST(AddressSelectionTest, AlternateFafc2) {
  SelectionInput input;
  input.ipv6 = {v6(1), v6(2), v6(3)};
  input.ipv4 = {v4(1), v4(2)};
  HeOptions o = HeOptions::rfc8305();
  o.first_address_family_count = 2;
  const auto out = select_addresses(input, o);
  // v6 v6 | v4 v6 v4
  EXPECT_EQ(families(out),
            (std::vector<Family>{Family::kIpv6, Family::kIpv6, Family::kIpv4,
                                 Family::kIpv6, Family::kIpv4}));
}

TEST(AddressSelectionTest, SafariPattern10Plus10) {
  SelectionInput input;
  for (int i = 1; i <= 10; ++i) input.ipv6.push_back(v6(i));
  for (int i = 1; i <= 10; ++i) input.ipv4.push_back(v4(i));
  HeOptions o;
  o.first_address_family_count = 2;
  o.interlace = InterlaceMode::kFirstOtherThenRest;
  o.max_addresses_per_family = 10;
  const auto out = select_addresses(input, o);
  ASSERT_EQ(out.size(), 20u);
  // Paper App. D: two IPv6, one IPv4, remaining eight IPv6, remaining nine
  // IPv4.
  std::vector<Family> expected;
  expected.push_back(Family::kIpv6);
  expected.push_back(Family::kIpv6);
  expected.push_back(Family::kIpv4);
  for (int i = 0; i < 8; ++i) expected.push_back(Family::kIpv6);
  for (int i = 0; i < 9; ++i) expected.push_back(Family::kIpv4);
  EXPECT_EQ(families(out), expected);
}

TEST(AddressSelectionTest, PreferIpv4WhenConfigured) {
  SelectionInput input;
  input.ipv6 = {v6(1)};
  input.ipv4 = {v4(1)};
  HeOptions o = HeOptions::rfc8305();
  o.prefer_ipv6 = false;
  const auto out = select_addresses(input, o);
  EXPECT_EQ(out.front().address.family(), Family::kIpv4);
}

TEST(AddressSelectionTest, TruncatesPerFamily) {
  SelectionInput input;
  for (int i = 1; i <= 5; ++i) input.ipv6.push_back(v6(i));
  for (int i = 1; i <= 5; ++i) input.ipv4.push_back(v4(i));
  HeOptions o = HeOptions::rfc8305();
  o.max_addresses_per_family = 1;
  o.interlace = InterlaceMode::kNone;
  const auto out = select_addresses(input, o);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].address.family(), Family::kIpv6);
  EXPECT_EQ(out[1].address.family(), Family::kIpv4);
}

TEST(AddressSelectionTest, NoFallbackUsesPreferredOnly) {
  SelectionInput input;
  input.ipv6 = {v6(1), v6(2)};
  input.ipv4 = {v4(1)};
  HeOptions o = HeOptions::none();
  o.max_addresses_per_family = 10;
  const auto out = select_addresses(input, o);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& c : out) EXPECT_EQ(c.address.family(), Family::kIpv6);
}

TEST(AddressSelectionTest, NoFallbackFallsToOtherFamilyOnlyWhenEmpty) {
  SelectionInput input;
  input.ipv4 = {v4(1)};
  HeOptions o = HeOptions::none();
  const auto out = select_addresses(input, o);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].address.family(), Family::kIpv4);
}

TEST(AddressSelectionTest, HistoryRttSorting) {
  SelectionInput input;
  input.ipv6 = {v6(1, ms(80)), v6(2, ms(10)), v6(3)};
  HeOptions o;
  o.sort_by_history = true;
  o.interlace = InterlaceMode::kNone;
  const auto out = select_addresses(input, o);
  EXPECT_EQ(out[0].address, v6(2).address);  // fastest first
  EXPECT_EQ(out[1].address, v6(1).address);
  EXPECT_EQ(out[2].address, v6(3).address);  // unknown last
}

TEST(AddressSelectionTest, EchPreferencePromotesEchEndpoints) {
  SelectionInput input;
  input.ipv6 = {v6(1, std::nullopt, false), v6(2, std::nullopt, true)};
  HeOptions o;
  o.prefer_ech = true;
  o.interlace = InterlaceMode::kNone;
  const auto out = select_addresses(input, o);
  EXPECT_TRUE(out[0].ech_available);
}

TEST(AddressSelectionTest, EmptyInputsYieldEmptyPlan) {
  EXPECT_TRUE(select_addresses({}, HeOptions::rfc8305()).empty());
}

// Property: output is a permutation of the (truncated) inputs; the first
// element is from the preferred family whenever that family is non-empty.
TEST(AddressSelectionTest, RandomisedInvariants) {
  Rng rng{99};
  for (int iteration = 0; iteration < 300; ++iteration) {
    SelectionInput input;
    const int n6 = static_cast<int>(rng.next_below(6));
    const int n4 = static_cast<int>(rng.next_below(6));
    for (int i = 1; i <= n6; ++i) input.ipv6.push_back(v6(i));
    for (int i = 1; i <= n4; ++i) input.ipv4.push_back(v4(i));

    HeOptions o;
    o.first_address_family_count = static_cast<int>(rng.next_in_range(1, 3));
    o.interlace = static_cast<InterlaceMode>(rng.next_below(3));
    o.prefer_ipv6 = rng.chance(0.5);
    o.max_addresses_per_family = static_cast<int>(rng.next_in_range(1, 6));

    const auto out = select_addresses(input, o);

    const std::size_t expect6 = std::min<std::size_t>(
        input.ipv6.size(), static_cast<std::size_t>(o.max_addresses_per_family));
    const std::size_t expect4 = std::min<std::size_t>(
        input.ipv4.size(), static_cast<std::size_t>(o.max_addresses_per_family));
    ASSERT_EQ(out.size(), expect6 + expect4) << "iteration " << iteration;

    std::size_t got6 = 0;
    for (const auto& c : out) {
      if (c.address.family() == Family::kIpv6) ++got6;
    }
    EXPECT_EQ(got6, expect6);

    if (!out.empty()) {
      const Family preferred =
          o.prefer_ipv6 ? Family::kIpv6 : Family::kIpv4;
      const bool preferred_available =
          (preferred == Family::kIpv6 ? expect6 : expect4) > 0;
      if (preferred_available) {
        EXPECT_EQ(out.front().address.family(), preferred)
            << "iteration " << iteration;
      }
    }
    // No duplicates.
    for (std::size_t i = 0; i < out.size(); ++i) {
      for (std::size_t j = i + 1; j < out.size(); ++j) {
        EXPECT_NE(out[i].address, out[j].address);
      }
    }
  }
}

// ---------------------------------------------------------------- cache ----

TEST(OutcomeCacheTest, StoreAndLookup) {
  OutcomeCache cache;
  const auto host = dns::DnsName::must_parse("www.he.lab");
  cache.store(host, IpAddress::must_parse("2001:db8::1"),
              transport::TransportProtocol::kTcp, SimTime{0}, minutes(10));
  const auto hit = cache.lookup(host, minutes(5));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->address.to_string(), "2001:db8::1");
}

TEST(OutcomeCacheTest, ExpiresAfterTtl) {
  OutcomeCache cache;
  const auto host = dns::DnsName::must_parse("www.he.lab");
  cache.store(host, IpAddress::must_parse("10.0.0.1"),
              transport::TransportProtocol::kTcp, SimTime{0}, minutes(10));
  EXPECT_TRUE(cache.lookup(host, minutes(10) - ms(1)));
  EXPECT_FALSE(cache.lookup(host, minutes(10)));
}

TEST(OutcomeCacheTest, ZeroTtlDisables) {
  OutcomeCache cache;
  const auto host = dns::DnsName::must_parse("www.he.lab");
  cache.store(host, IpAddress::must_parse("10.0.0.1"),
              transport::TransportProtocol::kTcp, SimTime{0}, SimTime{0});
  EXPECT_FALSE(cache.lookup(host, SimTime{0}));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(OutcomeCacheTest, EraseAndClear) {
  OutcomeCache cache;
  const auto a = dns::DnsName::must_parse("a.lab");
  const auto b = dns::DnsName::must_parse("b.lab");
  cache.store(a, IpAddress::must_parse("10.0.0.1"),
              transport::TransportProtocol::kTcp, SimTime{0}, minutes(10));
  cache.store(b, IpAddress::must_parse("10.0.0.2"),
              transport::TransportProtocol::kQuic, SimTime{0}, minutes(10));
  cache.erase(a);
  EXPECT_FALSE(cache.lookup(a, SimTime{0}));
  EXPECT_TRUE(cache.lookup(b, SimTime{0}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// -------------------------------------------------------------- options ----

TEST(HeOptionsTest, Rfc6555Preset) {
  const auto o = HeOptions::rfc6555();
  EXPECT_EQ(o.version, HeVersion::kV1);
  EXPECT_EQ(o.connection_attempt_delay, ms(250));  // 150-250 ms upper bound
  EXPECT_FALSE(o.resolution_delay);
  EXPECT_EQ(o.max_addresses_per_family, 1);  // IPv6 once, then IPv4
  EXPECT_EQ(o.cache_ttl, minutes(10));       // "order of 10 minutes"
}

TEST(HeOptionsTest, Rfc8305Preset) {
  const auto o = HeOptions::rfc8305();
  EXPECT_EQ(o.version, HeVersion::kV2);
  ASSERT_TRUE(o.resolution_delay);
  EXPECT_EQ(*o.resolution_delay, ms(50));
  EXPECT_EQ(o.connection_attempt_delay, ms(250));
  EXPECT_TRUE(o.query_aaaa_first);
  EXPECT_EQ(o.first_address_family_count, 1);
  // Dynamic CAD bounds (Table 1): 10 ms / 100 ms / 2 s.
  EXPECT_EQ(o.dynamic_cad.minimum, ms(10));
  EXPECT_EQ(o.dynamic_cad.recommended_minimum, ms(100));
  EXPECT_EQ(o.dynamic_cad.maximum, sec(2));
}

TEST(HeOptionsTest, V3DraftPreset) {
  const auto o = HeOptions::v3_draft();
  EXPECT_EQ(o.version, HeVersion::kV3);
  EXPECT_TRUE(o.use_svcb);
  EXPECT_TRUE(o.race_quic);
  EXPECT_TRUE(o.prefer_ech);
  // Same delays as v2 (Table 1).
  EXPECT_EQ(*o.resolution_delay, ms(50));
  EXPECT_EQ(o.connection_attempt_delay, ms(250));
}

TEST(HeOptionsTest, DynamicCadClamping) {
  DynamicCad cad;
  cad.enabled = true;
  cad.minimum = ms(10);
  cad.maximum = sec(2);
  cad.rtt_multiplier = 2.0;
  cad.no_history_default = sec(2);
  EXPECT_EQ(cad.effective(std::nullopt), sec(2));
  EXPECT_EQ(cad.effective(ms(50)), ms(100));
  EXPECT_EQ(cad.effective(ms(1)), ms(10));      // clamped up
  EXPECT_EQ(cad.effective(sec(10)), sec(2));    // clamped down
}

TEST(HeOptionsTest, EffectiveCadSelectsModel) {
  HeOptions o;
  o.connection_attempt_delay = ms(300);
  EXPECT_EQ(o.effective_cad(ms(50)), ms(300));  // fixed
  o.dynamic_cad.enabled = true;
  o.dynamic_cad.rtt_multiplier = 4.0;
  o.dynamic_cad.minimum = ms(10);
  o.dynamic_cad.maximum = sec(2);
  EXPECT_EQ(o.effective_cad(ms(50)), ms(200));  // dynamic
}

TEST(HeOptionsTest, VersionNames) {
  EXPECT_STREQ(he_version_name(HeVersion::kV1), "HEv1");
  EXPECT_STREQ(he_version_name(HeVersion::kNone), "none");
}

}  // namespace
}  // namespace lazyeye::he
