// Cross-module integration tests: the full stack (HE engine -> stub ->
// recursive resolver -> delegation tree; TCP to the target) plus failure
// injection (packet loss, garbage payloads, off-path responses, RST storms,
// concurrent sessions).
#include <gtest/gtest.h>

#include "capture/analysis.h"
#include "capture/capture.h"
#include "clients/client.h"
#include "clients/profiles.h"
#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "he/engine.h"
#include "simnet/network.h"

namespace lazyeye {
namespace {

using simnet::Family;
using simnet::IpAddress;

dns::DnsName N(const char* s) { return dns::DnsName::must_parse(s); }

// Full stack: the client's stub resolver points at a *recursive* resolver,
// which walks root -> lab -> site.lab; the web server is a fourth host.
struct FullStackFixture : ::testing::Test {
  FullStackFixture()
      : net{31},
        client_host{net.add_host("client")},
        resolver_host{net.add_host("resolver")},
        root_host{net.add_host("root")},
        auth_host{net.add_host("auth")},
        web_host{net.add_host("web")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(IpAddress::must_parse("2001:db8::2"));
    resolver_host.add_address(IpAddress::must_parse("10.0.0.53"));
    resolver_host.add_address(IpAddress::must_parse("2001:db8::53"));
    root_host.add_address(IpAddress::must_parse("10.0.0.1"));
    root_host.add_address(IpAddress::must_parse("2001:db8::1"));
    auth_host.add_address(IpAddress::must_parse("10.0.1.1"));
    auth_host.add_address(IpAddress::must_parse("2001:db8:1::1"));
    web_host.add_address(IpAddress::must_parse("10.0.2.80"));
    web_host.add_address(IpAddress::must_parse("2001:db8:2::80"));

    root = std::make_unique<dns::AuthServer>(root_host);
    dns::Zone& root_zone = root->add_zone(dns::DnsName{});
    root_zone.add_ns(N("lab"), N("ns1.lab"));
    root_zone.add(dns::ResourceRecord::a(N("ns1.lab"),
                                         *simnet::Ipv4Address::parse("10.0.1.1")));
    root_zone.add(dns::ResourceRecord::aaaa(
        N("ns1.lab"), *simnet::Ipv6Address::parse("2001:db8:1::1")));

    auth = std::make_unique<dns::AuthServer>(auth_host);
    dns::Zone& lab = auth->add_zone(N("lab"));
    lab.add_ns(N("lab"), N("ns1.lab"));
    lab.add_a(N("ns1.lab"), *simnet::Ipv4Address::parse("10.0.1.1"));
    lab.add_aaaa(N("ns1.lab"), *simnet::Ipv6Address::parse("2001:db8:1::1"));
    lab.add_a(N("www.site.lab"), *simnet::Ipv4Address::parse("10.0.2.80"));
    lab.add_aaaa(N("www.site.lab"),
                 *simnet::Ipv6Address::parse("2001:db8:2::80"));

    dns::ResolverProfile rprofile;
    rprofile.name = "full-stack";
    rprofile.ns_query_strategy = dns::NsQueryStrategy::kAaaaThenA;
    rprofile.ipv6_probability = 1.0;
    rprofile.attempt_timeout = ms(400);
    recursive = std::make_unique<dns::RecursiveResolver>(
        resolver_host, rprofile,
        std::vector<IpAddress>{IpAddress::must_parse("10.0.0.1"),
                               IpAddress::must_parse("2001:db8::1")});
    recursive->serve(53);

    web_tcp = std::make_unique<transport::TcpStack>(web_host);
    web_tcp->listen(443);
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& resolver_host;
  simnet::Host& root_host;
  simnet::Host& auth_host;
  simnet::Host& web_host;
  std::unique_ptr<dns::AuthServer> root;
  std::unique_ptr<dns::AuthServer> auth;
  std::unique_ptr<dns::RecursiveResolver> recursive;
  std::unique_ptr<transport::TcpStack> web_tcp;
};

TEST_F(FullStackFixture, HappyEyeballsThroughRecursiveResolution) {
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  dns::StubResolver stub{client_host, stub_options};
  transport::TcpStack client_tcp{client_host};
  he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
  engine.set_options(he::HeOptions::rfc8305());

  he::HeResult result;
  engine.connect(N("www.site.lab"), 443,
                 [&](const he::HeResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv6);
  // The recursive resolver did the iterative walk on the client's behalf.
  EXPECT_GE(root->query_log().size(), 1u);
  EXPECT_GE(auth->query_log().size(), 1u);
}

TEST_F(FullStackFixture, BrokenV6AtWebServerStillConnectsViaV4) {
  // The web server's IPv6 is blackholed, the entire DNS tree is healthy:
  // HE must save the user with an IPv4 fallback at its CAD.
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8:2::80")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "dead v6 web");

  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  dns::StubResolver stub{client_host, stub_options};
  transport::TcpStack client_tcp{client_host};
  capture::PacketCapture cap{client_host};
  he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
  engine.set_options(he::HeOptions::rfc8305());

  he::HeResult result;
  engine.connect(N("www.site.lab"), 443,
                 [&](const he::HeResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.family(), Family::kIpv4);
  const auto cad = capture::infer_cad(cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, ms(250));
}

TEST_F(FullStackFixture, ConcurrentSessionsDoNotInterfere) {
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  dns::StubResolver stub{client_host, stub_options};
  transport::TcpStack client_tcp{client_host};
  he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
  engine.set_options(he::HeOptions::rfc8305());
  engine.options().cache_ttl = SimTime{0};  // force full runs

  int ok_count = 0;
  for (int i = 0; i < 5; ++i) {
    engine.connect(N("www.site.lab"), 443, [&](const he::HeResult& r) {
      if (r.ok) ++ok_count;
    });
  }
  net.loop().run();
  EXPECT_EQ(ok_count, 5);
  EXPECT_EQ(engine.active_sessions(), 0u);
}

// -------------------------------------------------- failure injection ----

struct FailureFixture : ::testing::Test {
  FailureFixture()
      : net{41}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(IpAddress::must_parse("2001:db8::2"));
    server_host.add_address(IpAddress::must_parse("10.0.0.80"));
    server_host.add_address(IpAddress::must_parse("2001:db8::80"));
    server_tcp = std::make_unique<transport::TcpStack>(server_host);
    server_tcp->listen(443);
    auth = std::make_unique<dns::AuthServer>(server_host);
    dns::Zone& zone = auth->add_zone(N("he.lab"));
    zone.add_a(N("www.he.lab"), *simnet::Ipv4Address::parse("10.0.0.80"));
    zone.add_aaaa(N("www.he.lab"),
                  *simnet::Ipv6Address::parse("2001:db8::80"));
  }

  he::HeResult run_engine(he::HeOptions options,
                          dns::StubOptions stub_options = {}) {
    if (stub_options.servers.empty()) {
      stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
    }
    dns::StubResolver stub{client_host, stub_options};
    transport::TcpStack client_tcp{client_host};
    he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
    engine.set_options(std::move(options));
    he::HeResult result;
    engine.connect(N("www.he.lab"), 443,
                   [&](const he::HeResult& r) { result = r; });
    net.loop().run();
    return result;
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  std::unique_ptr<transport::TcpStack> server_tcp;
  std::unique_ptr<dns::AuthServer> auth;
};

TEST_F(FailureFixture, LossyNetworkEventuallyConnects) {
  // 30 % loss on everything: DNS retries + SYN retransmissions must still
  // land a connection.
  net.qdisc().add_rule(simnet::PacketFilter::any(),
                       simnet::NetemSpec{SimTime{0}, SimTime{0}, 0.3},
                       "lossy world");
  he::HeOptions options = he::HeOptions::rfc8305();
  options.tcp.syn_rto = ms(500);
  options.tcp.syn_retries = 8;
  options.overall_timeout = sec(60);
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
  stub_options.timeout = ms(800);
  stub_options.attempts_per_server = 6;
  const auto result = run_engine(options, stub_options);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_F(FailureFixture, GarbageUdpToClientPortIsIgnored) {
  // Blast garbage at the client's resolver port range mid-resolution: the
  // DnsClient must ignore unparsable datagrams and mismatched ids.
  he::HeOptions options = he::HeOptions::rfc8305();
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
  dns::StubResolver stub{client_host, stub_options};
  transport::TcpStack client_tcp{client_host};
  he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
  engine.set_options(options);

  he::HeResult result;
  engine.connect(N("www.he.lab"), 443,
                 [&](const he::HeResult& r) { result = r; });
  // Garbage from the server towards the client's ephemeral ports.
  for (std::uint16_t port = 49152; port < 49160; ++port) {
    server_host.udp_send({IpAddress::must_parse("10.0.0.80"), 53},
                         {IpAddress::must_parse("10.0.0.2"), port},
                         {0xde, 0xad, 0xbe, 0xef});
  }
  net.loop().run();
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_F(FailureFixture, OffPathDnsResponseNotAccepted) {
  // An attacker host answers from the wrong address; DnsClient must reject
  // the off-path response and accept the genuine one.
  simnet::Host& attacker = net.add_host("attacker");
  attacker.add_address(IpAddress::must_parse("10.0.0.66"));
  // The attacker sprays responses with guessed ids at likely ports.
  for (std::uint16_t port = 49152; port < 49156; ++port) {
    for (std::uint16_t id = 0; id < 8; ++id) {
      dns::DnsMessage fake;
      fake.header.id = id;
      fake.header.qr = true;
      fake.questions.push_back({N("www.he.lab"), dns::RrType::kAaaa});
      fake.answers.push_back(dns::ResourceRecord::aaaa(
          N("www.he.lab"), *simnet::Ipv6Address::parse("2001:db8::66")));
      attacker.udp_send({IpAddress::must_parse("10.0.0.66"), 53},
                        {IpAddress::must_parse("10.0.0.2"), port},
                        fake.encode());
    }
  }
  const auto result = run_engine(he::HeOptions::rfc8305());
  ASSERT_TRUE(result.ok);
  // Connected to the real server, not the attacker's address.
  EXPECT_EQ(result.remote.addr.to_string(), "2001:db8::80");
}

TEST_F(FailureFixture, ServerRstOnBothFamiliesFailsCleanly) {
  server_tcp->close_listener(443);
  he::HeOptions options = he::HeOptions::rfc8305();
  const auto result = run_engine(options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "all connection attempts failed");
}

TEST_F(FailureFixture, DnsServerDeadFailsAfterRetries) {
  auth->set_unresponsive(true);
  he::HeOptions options = he::HeOptions::rfc8305();
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
  stub_options.timeout = ms(400);
  stub_options.attempts_per_server = 2;
  const auto result = run_engine(options, stub_options);
  EXPECT_FALSE(result.ok);
}

TEST_F(FailureFixture, SimulatedClientSurvivesResponseTimeout) {
  // Server accepts connections but never answers the HTTP request: the
  // fetch must complete with response_received = false.
  server_tcp->set_data_handler(nullptr);
  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
  clients::SimulatedClient client{client_host,
                                  clients::curl_profile(), stub_options};
  clients::FetchResult fetch;
  bool done = false;
  client.fetch(N("www.he.lab"), 443, [&](const clients::FetchResult& r) {
    fetch = r;
    done = true;
  });
  net.loop().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(fetch.connection.ok);
  EXPECT_FALSE(fetch.response_received);
}

TEST_F(FailureFixture, ReorderingViaJitterStillCompletes) {
  net.qdisc().add_rule(simnet::PacketFilter::any(),
                       simnet::NetemSpec{ms(10), ms(9), 0.0}, "jitter");
  const auto result = run_engine(he::HeOptions::rfc8305());
  EXPECT_TRUE(result.ok) << result.error;
}

}  // namespace
}  // namespace lazyeye
