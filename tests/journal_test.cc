// Crash-safety tests: cell journaling, exact resume, per-cell fault
// isolation, and shard planning/merge.
//
// The kill(SIGKILL) test runs FIRST in this binary: it forks, and fork()
// is only safe here while no WorkerPool threads exist yet (the child runs
// its campaign inline with workers=1; the parent only spawns pool threads
// after reaping the child).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/journal.h"
#include "campaign/journal_sink.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/shard.h"
#include "campaign/sink.h"
#include "campaign/sketch.h"
#include "campaign/spec_stream.h"
#include "util/rng.h"

namespace lazyeye::campaign {
namespace {

std::vector<ScenarioSpec> numbered_specs(std::size_t n) {
  std::vector<ScenarioSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].id = i;
    specs[i].seed = 1000 + i;
    specs[i].label = "cell-" + std::to_string(i);
  }
  return specs;
}

/// Deterministic pure function of the spec — the "measurement".
std::uint64_t cell_value(const ScenarioSpec& s) {
  SplitMix64 mix{s.seed ^ (s.id * 0x9e3779b97f4a7c15ULL)};
  return mix.next();
}

std::function<std::uint64_t(const ScenarioSpec&)> value_executor() {
  return [](const ScenarioSpec& s) { return cell_value(s); };
}

JournalCodec<std::uint64_t> u64_codec() {
  JournalCodec<std::uint64_t> codec;
  codec.encode = [](const ScenarioSpec&, const std::uint64_t& v) {
    std::string out;
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
    return out;
  };
  codec.decode = [](std::string_view bytes) -> std::optional<std::uint64_t> {
    if (bytes.size() != 8) return std::nullopt;
    std::uint64_t v = 0;
    for (const char c : bytes) v = (v << 8) | static_cast<unsigned char>(c);
    return v;
  };
  return codec;
}

std::string tmp_path(const std::string& name) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append("lazyeye_");
  path.append(name);
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CampaignRunner runner_with(int workers) {
  RunnerOptions options;
  options.workers = workers;
  return CampaignRunner{options};
}

// ----------------------------------------------------- kill -9 + resume ----
// Must stay the first test in this file (see the header comment).

#if defined(__unix__) || defined(__APPLE__)
TEST(JournalCrashTest, KillNineMidCampaignThenResumeIsExact) {
  constexpr std::size_t kCells = 120;
  constexpr std::size_t kKillAfter = 37;
  const auto specs = numbered_specs(kCells);
  const std::uint64_t identity = journal_identity("kill9", kCells, 1);
  const std::string path = tmp_path("kill9.journal");

  std::fflush(nullptr);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the campaign inline (workers=1, no pool threads) and die
    // mid-run, after kKillAfter cells have been delivered and journaled.
    std::size_t executed = 0;
    const std::function<std::uint64_t(const ScenarioSpec&)> executor =
        [&executed](const ScenarioSpec& s) {
          if (executed == kKillAfter) raise(SIGKILL);
          ++executed;
          return cell_value(s);
        };
    JournalOptions options;
    options.path = path;
    options.identity = identity;
    CollectingSink<std::uint64_t> sink;
    const JournalCodec<std::uint64_t> codec = u64_codec();
    run_journaled<std::uint64_t>(runner_with(1), SpecStream::view(specs),
                                 executor, sink, options, &codec);
    _exit(7);  // not reached: the campaign must die before finishing
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The journal is an in-order prefix: exactly the delivered cells.
  const JournalLoad load = load_journal(path);
  ASSERT_TRUE(load.exists);
  EXPECT_EQ(load.cells.size(), kKillAfter);
  EXPECT_FALSE(load.complete);

  // Resume in this process, multi-threaded, and byte-compare the aggregate
  // against an uninterrupted run.
  JournalOptions options;
  options.path = path;
  options.identity = identity;
  CollectingSink<std::uint64_t> resumed;
  const JournalCodec<std::uint64_t> codec = u64_codec();
  const JournaledRun run = run_journaled<std::uint64_t>(
      runner_with(4), SpecStream::view(specs), value_executor(), resumed,
      options, &codec);
  EXPECT_TRUE(run.resumed);
  EXPECT_EQ(run.cells_replayed, kKillAfter);
  EXPECT_EQ(run.cells_run, kCells - kKillAfter);

  CollectingSink<std::uint64_t> reference;
  runner_with(4).run_streaming<std::uint64_t>(specs, value_executor(),
                                              reference);
  EXPECT_EQ(resumed.result().outcomes, reference.result().outcomes);
  ASSERT_EQ(resumed.result().specs.size(), kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(resumed.result().specs[i].id, i);
  }
  std::remove(path.c_str());
}
#endif  // unix

// ------------------------------------------------------------- format ----

TEST(JournalFormatTest, RoundTripsAllRecordTypes) {
  const std::string path = tmp_path("roundtrip.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 0xABCD, 0, 4);
    writer.append_cell(0, "alpha");
    writer.append_cell(1, "");
    writer.append_quarantine(2, 3, true, "it hung");
    writer.append_cell(3, "omega");
    writer.append_snapshot(4, "sink-state");
    writer.append_complete(4);
  }
  const JournalLoad load = load_journal(path);
  ASSERT_TRUE(load.exists);
  EXPECT_EQ(load.identity, 0xABCDu);
  EXPECT_EQ(load.cell_begin, 0u);
  EXPECT_EQ(load.cell_end, 4u);
  ASSERT_EQ(load.cells.size(), 4u);
  EXPECT_EQ(load.cells[0].payload, "alpha");
  EXPECT_FALSE(load.cells[0].quarantined);
  EXPECT_TRUE(load.cells[2].quarantined);
  EXPECT_EQ(load.cells[2].attempts, 3);
  EXPECT_TRUE(load.cells[2].timed_out);
  EXPECT_EQ(load.cells[2].payload, "it hung");
  EXPECT_EQ(load.snapshot_state, "sink-state");
  EXPECT_EQ(load.snapshot_cells, 4u);
  EXPECT_TRUE(load.complete);
  EXPECT_FALSE(load.torn_tail);
  EXPECT_EQ(load.resume_index(), 4u);
  std::remove(path.c_str());
}

TEST(JournalFormatTest, MissingFileIsAFreshCampaign) {
  const JournalLoad load = load_journal(tmp_path("never_written.journal"));
  EXPECT_FALSE(load.exists);
}

TEST(JournalFormatTest, IdentityIsAPureHash) {
  const std::uint64_t a = journal_identity("stream", 100, 42);
  EXPECT_EQ(a, journal_identity("stream", 100, 42));
  EXPECT_NE(a, journal_identity("stream2", 100, 42));
  EXPECT_NE(a, journal_identity("stream", 101, 42));
  EXPECT_NE(a, journal_identity("stream", 100, 43));
}

// ----------------------------------------------------------- recovery ----

TEST(JournalRecoveryTest, TornFinalRecordIsDroppedAndOverwritten) {
  const std::string path = tmp_path("torn.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 1, 0, 8);
    writer.append_cell(0, "abc");
    writer.append_cell(1, "def");
    writer.append_cell(2, "ghi");
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  std::string bytes = read_file(path);
  const std::size_t intact_size = bytes.size();
  bytes.append("\x01\x00\x00", 3);
  write_file(path, bytes);

  const JournalLoad load = load_journal(path);
  ASSERT_TRUE(load.exists);
  EXPECT_TRUE(load.torn_tail);
  EXPECT_EQ(load.cells.size(), 3u);
  EXPECT_EQ(load.valid_bytes, intact_size);
  EXPECT_EQ(load.resume_index(), 3u);

  // Resuming truncates the torn tail and appends cleanly over it.
  {
    JournalWriter writer = JournalWriter::append(path, load.valid_bytes);
    writer.append_cell(3, "jkl");
  }
  const JournalLoad healed = load_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.cells.size(), 4u);
  EXPECT_EQ(healed.cells[3].payload, "jkl");
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, CorruptFinalRecordCrcIsATornTail) {
  const std::string path = tmp_path("tail_crc.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 1, 0, 8);
    writer.append_cell(0, "abc");
    writer.append_cell(1, "def");
  }
  std::string bytes = read_file(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5A);  // flip tail CRC
  write_file(path, bytes);
  const JournalLoad load = load_journal(path);
  EXPECT_TRUE(load.torn_tail);
  EXPECT_EQ(load.cells.size(), 1u);  // only the intact first record
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, TruncatedHeaderThrows) {
  const std::string path = tmp_path("short_header.journal");
  { JournalWriter::create(path, 1, 0, 8); }
  std::string bytes = read_file(path);
  bytes.resize(bytes.size() / 2);
  write_file(path, bytes);
  EXPECT_THROW(load_journal(path), JournalError);
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, CorruptHeaderCrcThrows) {
  const std::string path = tmp_path("header_crc.journal");
  { JournalWriter::create(path, 1, 0, 8); }
  std::string bytes = read_file(path);
  bytes[8] = static_cast<char>(bytes[8] ^ 0xFF);
  write_file(path, bytes);
  EXPECT_THROW(load_journal(path), JournalError);
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, MidFileCorruptionThrowsNeverSkips) {
  const std::string path = tmp_path("midfile.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 1, 0, 8);
    for (std::uint64_t i = 0; i < 5; ++i) writer.append_cell(i, "payload");
  }
  // Flip a byte inside the SECOND record: damage that is not a torn tail
  // must refuse loudly instead of resuming past a hole.
  std::string bytes = read_file(path);
  const std::size_t record = 9 + 8 + 7;  // frame + index + "payload"
  const std::size_t offset = 34 + record + record / 2;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x01);
  write_file(path, bytes);
  EXPECT_THROW(load_journal(path), JournalError);
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, NonContiguousCellIndexThrows) {
  const std::string path = tmp_path("gap.journal");
  {
    JournalWriter writer = JournalWriter::create(path, 1, 0, 8);
    writer.append_cell(0, "a");
    writer.append_cell(2, "c");  // skipped cell 1: the prefix invariant broke
  }
  EXPECT_THROW(load_journal(path), JournalError);
  std::remove(path.c_str());
}

// ----------------------------------------------------- journaled runs ----

TEST(JournaledRunTest, IdentityMismatchRefusesLoudly) {
  const auto specs = numbered_specs(10);
  const std::string path = tmp_path("identity.journal");
  const JournalCodec<std::uint64_t> codec = u64_codec();
  JournalOptions options;
  options.path = path;
  options.identity = journal_identity("stream-a", specs.size(), 1);
  CollectingSink<std::uint64_t> sink;
  run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                               value_executor(), sink, options, &codec);

  options.identity = journal_identity("stream-b", specs.size(), 1);
  CollectingSink<std::uint64_t> sink2;
  EXPECT_THROW(
      run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                                   value_executor(), sink2, options, &codec),
      JournalError);
  std::remove(path.c_str());
}

TEST(JournaledRunTest, CellRangeMismatchRefusesLoudly) {
  const auto specs = numbered_specs(10);
  const std::string path = tmp_path("range.journal");
  const JournalCodec<std::uint64_t> codec = u64_codec();
  JournalOptions options;
  options.path = path;
  options.identity = journal_identity("range", specs.size(), 1);
  CollectingSink<std::uint64_t> sink;
  run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                               value_executor(), sink, options, &codec);

  options.cell_begin = 2;
  options.cell_end = 8;
  CollectingSink<std::uint64_t> sink2;
  EXPECT_THROW(
      run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                                   value_executor(), sink2, options, &codec),
      JournalError);
  std::remove(path.c_str());
}

TEST(JournaledRunTest, UndecodableRecordRefusesResume) {
  const auto specs = numbered_specs(6);
  const std::string path = tmp_path("undecodable.journal");
  const JournalCodec<std::uint64_t> codec = u64_codec();
  JournalOptions options;
  options.path = path;
  options.identity = journal_identity("undecodable", specs.size(), 1);
  CollectingSink<std::uint64_t> sink;
  run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                               value_executor(), sink, options, &codec);

  // A codec whose schema "changed" decodes nothing: the resume must throw,
  // not silently skip journaled cells.
  JournalCodec<std::uint64_t> broken = u64_codec();
  broken.decode = [](std::string_view) -> std::optional<std::uint64_t> {
    return std::nullopt;
  };
  CollectingSink<std::uint64_t> sink2;
  EXPECT_THROW(
      run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                                   value_executor(), sink2, options, &broken),
      JournalError);
  std::remove(path.c_str());
}

TEST(JournaledRunTest, InterruptedRunResumesByteIdenticalAtAnyWorkerCount) {
  constexpr std::size_t kCells = 96;
  const auto specs = numbered_specs(kCells);
  const std::uint64_t identity = journal_identity("resume", kCells, 1);
  const JournalCodec<std::uint64_t> codec = u64_codec();
  const std::string master = tmp_path("resume_master.journal");

  // Interrupt a 2-worker run partway through via a throwing executor (the
  // fail-fast default): the journal keeps the delivered prefix.
  {
    const std::function<std::uint64_t(const ScenarioSpec&)> trap =
        [](const ScenarioSpec& s) -> std::uint64_t {
      if (s.id == 70) throw std::runtime_error("interrupt");
      return cell_value(s);
    };
    JournalOptions options;
    options.path = master;
    options.identity = identity;
    CollectingSink<std::uint64_t> sink;
    EXPECT_THROW(run_journaled<std::uint64_t>(runner_with(2),
                                              SpecStream::view(specs), trap,
                                              sink, options, &codec),
                 std::runtime_error);
  }
  const JournalLoad partial = load_journal(master);
  ASSERT_TRUE(partial.exists);
  ASSERT_FALSE(partial.complete);
  ASSERT_LT(partial.cells.size(), kCells);

  CollectingSink<std::uint64_t> reference;
  runner_with(4).run_streaming<std::uint64_t>(specs, value_executor(),
                                              reference);

  for (const int workers : {1, 2, 4, 8}) {
    const std::string path =
        tmp_path("resume_w" + std::to_string(workers) + ".journal");
    write_file(path, read_file(master));

    JournalOptions options;
    options.path = path;
    options.identity = identity;
    CollectingSink<std::uint64_t> resumed;
    const JournaledRun run = run_journaled<std::uint64_t>(
        runner_with(workers), SpecStream::view(specs), value_executor(),
        resumed, options, &codec);
    EXPECT_TRUE(run.resumed);
    EXPECT_EQ(run.cells_replayed, partial.cells.size());
    EXPECT_EQ(run.cells_replayed + run.cells_run, kCells);
    EXPECT_EQ(resumed.result().outcomes, reference.result().outcomes)
        << "workers=" << workers;
    std::remove(path.c_str());
  }
  std::remove(master.c_str());
}

TEST(JournaledRunTest, CompleteJournalShortCircuitsAndReplays) {
  const auto specs = numbered_specs(20);
  const std::string path = tmp_path("complete.journal");
  const JournalCodec<std::uint64_t> codec = u64_codec();
  JournalOptions options;
  options.path = path;
  options.identity = journal_identity("complete", specs.size(), 1);

  CollectingSink<std::uint64_t> first;
  run_journaled<std::uint64_t>(runner_with(2), SpecStream::view(specs),
                               value_executor(), first, options, &codec);

  // Second run: nothing executes; the sink is fed purely from the journal.
  std::atomic<int> executed{0};
  const std::function<std::uint64_t(const ScenarioSpec&)> counting =
      [&executed](const ScenarioSpec& s) {
        executed.fetch_add(1);
        return cell_value(s);
      };
  CollectingSink<std::uint64_t> second;
  const JournaledRun run = run_journaled<std::uint64_t>(
      runner_with(2), SpecStream::view(specs), counting, second, options,
      &codec);
  EXPECT_TRUE(run.already_complete);
  EXPECT_EQ(run.cells_run, 0u);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(second.result().outcomes, first.result().outcomes);
  std::remove(path.c_str());
}

// ------------------------------------------------------ snapshot mode ----

SketchSink<std::uint64_t> make_sketch_sink() {
  SketchSink<std::uint64_t> sink;
  sink.add_metric("value_mod", [](const ScenarioSpec&, const std::uint64_t& v) {
    return std::optional<double>{static_cast<double>(v % 100000)};
  });
  sink.add_metric("seed", [](const ScenarioSpec& s, const std::uint64_t&) {
    return std::optional<double>{static_cast<double>(s.seed)};
  });
  return sink;
}

TEST(SnapshotResumeTest, SketchSinkResumesToIdenticalFingerprint) {
  constexpr std::size_t kCells = 100;
  const auto specs = numbered_specs(kCells);
  const std::uint64_t identity = journal_identity("sketch", kCells, 1);
  const std::string path = tmp_path("sketch.journal");

  SketchSink<std::uint64_t> reference = make_sketch_sink();
  runner_with(4).run_streaming<std::uint64_t>(specs, value_executor(),
                                              reference);

  // Interrupted snapshot-mode run (no codec): state journaled every 16
  // cells, crash at cell 60.
  {
    const std::function<std::uint64_t(const ScenarioSpec&)> trap =
        [](const ScenarioSpec& s) -> std::uint64_t {
      if (s.id == 60) throw std::runtime_error("interrupt");
      return cell_value(s);
    };
    JournalOptions options;
    options.path = path;
    options.identity = identity;
    options.snapshot_every = 16;
    SketchSink<std::uint64_t> sink = make_sketch_sink();
    EXPECT_THROW(run_journaled<std::uint64_t>(runner_with(2),
                                              SpecStream::view(specs), trap,
                                              sink, options),
                 std::runtime_error);
  }
  const JournalLoad partial = load_journal(path);
  ASSERT_TRUE(partial.exists);
  EXPECT_GT(partial.snapshot_cells, 0u);
  EXPECT_EQ(partial.snapshot_cells % 16, 0u);

  // Resume: restore the snapshot, re-run the tail, compare the fold.
  JournalOptions options;
  options.path = path;
  options.identity = identity;
  options.snapshot_every = 16;
  SketchSink<std::uint64_t> resumed = make_sketch_sink();
  const JournaledRun run = run_journaled<std::uint64_t>(
      runner_with(4), SpecStream::view(specs), value_executor(), resumed,
      options);
  EXPECT_TRUE(run.resumed);
  EXPECT_EQ(run.cells_replayed, partial.snapshot_cells);
  EXPECT_EQ(resumed.cells_seen(), kCells);
  EXPECT_EQ(resumed.fingerprint(), reference.fingerprint());

  // A completed snapshot-mode journal restores fully without re-running.
  SketchSink<std::uint64_t> restored = make_sketch_sink();
  std::atomic<int> executed{0};
  const std::function<std::uint64_t(const ScenarioSpec&)> counting =
      [&executed](const ScenarioSpec& s) {
        executed.fetch_add(1);
        return cell_value(s);
      };
  const JournaledRun again = run_journaled<std::uint64_t>(
      runner_with(2), SpecStream::view(specs), counting, restored, options);
  EXPECT_TRUE(again.already_complete);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(restored.fingerprint(), reference.fingerprint());
  std::remove(path.c_str());
}

// ---------------------------------------------------- fault isolation ----

/// Records the delivery sequence, including quarantined slots.
class RecordingSink final : public ResultSink<std::uint64_t> {
 public:
  void cell(const ScenarioSpec& spec, std::uint64_t) override {
    delivered.push_back(spec.id);
  }
  void cell_failed(const ScenarioSpec& spec,
                   const FailureReport& report) override {
    failed.push_back(spec.id);
    delivered.push_back(spec.id);
    reports.push_back(report);
  }

  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> failed;
  std::vector<FailureReport> reports;
};

TEST(FaultIsolationTest, QuarantineRetryCountersAndReplayLine) {
  const auto specs = numbered_specs(20);
  RunnerOptions options;
  options.workers = 2;
  options.max_cell_retries = 2;
  options.quarantine_failures = true;
  CampaignRunner runner{options};

  // Cell 5 always fails; cell 9 fails on its first attempt only.
  std::atomic<int> cell9_attempts{0};
  const std::function<std::uint64_t(const ScenarioSpec&)> flaky =
      [&cell9_attempts](const ScenarioSpec& s) -> std::uint64_t {
    if (s.id == 5) throw std::runtime_error("boom id=5");
    if (s.id == 9 && cell9_attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient id=9");
    }
    return cell_value(s);
  };

  RecordingSink sink;
  runner.run_streaming<std::uint64_t>(specs, flaky, sink);

  // Delivery order intact, quarantined slot in place.
  ASSERT_EQ(sink.delivered.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sink.delivered[i], i);
  ASSERT_EQ(sink.failed.size(), 1u);
  EXPECT_EQ(sink.failed[0], 5u);

  const CampaignRunner::RunStats stats = runner.last_run_stats();
  EXPECT_EQ(stats.cells_quarantined, 1u);
  EXPECT_EQ(stats.cells_retried, 3u);  // 2 for cell 5, 1 for cell 9
  EXPECT_EQ(stats.cells_failed, 4u);   // 3 attempts on cell 5, 1 on cell 9
  ASSERT_EQ(stats.failures.size(), 1u);
  const FailureReport& report = stats.failures[0];
  EXPECT_EQ(report.index, 5u);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_FALSE(report.timed_out);
  const std::string line = report.replay_line();
  EXPECT_NE(line.find("replay:"), std::string::npos) << line;
  EXPECT_NE(line.find("index=5"), std::string::npos) << line;
  EXPECT_NE(line.find("seed=" + std::to_string(specs[5].seed)),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("boom id=5"), std::string::npos) << line;
}

TEST(FaultIsolationTest, FailFastRemainsTheDefault) {
  const auto specs = numbered_specs(10);
  const std::function<std::uint64_t(const ScenarioSpec&)> trap =
      [](const ScenarioSpec& s) -> std::uint64_t {
    if (s.id == 4) throw std::runtime_error("boom");
    return cell_value(s);
  };
  CollectingSink<std::uint64_t> sink;
  EXPECT_THROW(runner_with(2).run_streaming<std::uint64_t>(specs, trap, sink),
               std::runtime_error);
}

TEST(FaultIsolationTest, SoftTimeoutQuarantinesSlowCell) {
  const auto specs = numbered_specs(8);
  RunnerOptions options;
  options.workers = 2;
  options.quarantine_failures = true;
  options.cell_timeout_ms = 5;
  CampaignRunner runner{options};

  const std::function<std::uint64_t(const ScenarioSpec&)> slow =
      [](const ScenarioSpec& s) {
        if (s.id == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(40));
        }
        return cell_value(s);
      };
  RecordingSink sink;
  runner.run_streaming<std::uint64_t>(specs, slow, sink);

  const CampaignRunner::RunStats stats = runner.last_run_stats();
  EXPECT_EQ(stats.cells_quarantined, 1u);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].index, 3u);
  EXPECT_TRUE(stats.failures[0].timed_out);
  EXPECT_NE(stats.failures[0].error.find("overran"), std::string::npos);
  ASSERT_EQ(sink.failed.size(), 1u);
  EXPECT_EQ(sink.failed[0], 3u);
}

// ----------------------------------------------------------- sharding ----

TEST(ShardPlanTest, ContiguousNearEqualPartition) {
  const auto plan = shard_plan(10, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[0].end, 4u);
  EXPECT_EQ(plan[1].begin, 4u);
  EXPECT_EQ(plan[1].end, 7u);
  EXPECT_EQ(plan[2].begin, 7u);
  EXPECT_EQ(plan[2].end, 10u);
  for (const ShardRange& r : plan) {
    EXPECT_EQ(r.shard, static_cast<int>(&r - plan.data()));
  }

  // More shards than cells: trailing shards are empty, coverage exact.
  const auto sparse = shard_plan(2, 4);
  ASSERT_EQ(sparse.size(), 4u);
  EXPECT_EQ(sparse[0].cells(), 1u);
  EXPECT_EQ(sparse[1].cells(), 1u);
  EXPECT_EQ(sparse[2].cells(), 0u);
  EXPECT_EQ(sparse[3].cells(), 0u);
}

TEST(ShardPlanTest, JournalPathsAreDistinct) {
  EXPECT_EQ(shard_journal_path("/tmp/base", 0), "/tmp/base.shard0.journal");
  EXPECT_EQ(shard_journal_path("/tmp/base", 3), "/tmp/base.shard3.journal");
}

TEST(ShardMergeTest, MergeReestablishesSpecOrderWithQuarantine) {
  constexpr std::size_t kCells = 40;
  const auto specs = numbered_specs(kCells);
  const JournalCodec<std::uint64_t> codec = u64_codec();

  for (const int shards : {2, 4}) {
    const std::uint64_t identity =
        journal_identity("merge", kCells, static_cast<std::uint64_t>(shards));
    const std::string base = tmp_path("merge" + std::to_string(shards));

    // Run each shard as its own journaled campaign (sequentially, in
    // process — the fork/kill variant is the lazyeye_shard crashtest).
    RunnerOptions shard_options;
    shard_options.workers = 2;
    shard_options.quarantine_failures = true;
    const CampaignRunner shard_runner{shard_options};
    const std::function<std::uint64_t(const ScenarioSpec&)> executor =
        [](const ScenarioSpec& s) -> std::uint64_t {
      if (s.id == 13) throw std::runtime_error("cell 13 is cursed");
      return cell_value(s);
    };
    for (const ShardRange& range : shard_plan(kCells, shards)) {
      JournalOptions options;
      options.path = shard_journal_path(base, range.shard);
      options.identity = identity;
      options.cell_begin = range.begin;
      options.cell_end = range.end;
      CallbackSink<std::uint64_t> drop{[](const ScenarioSpec&,
                                          std::uint64_t) {}};
      run_journaled<std::uint64_t>(shard_runner, SpecStream::view(specs),
                                   executor, drop, options, &codec);
    }

    std::vector<std::uint64_t> merged_indices;
    std::vector<std::uint64_t> merged_values;
    std::vector<std::uint64_t> quarantined;
    const ShardMergeStats stats = merge_shard_journals(
        base, shards, identity, kCells,
        [&](std::uint64_t index, std::string_view payload) {
          merged_indices.push_back(index);
          const auto value = codec.decode(payload);
          ASSERT_TRUE(value.has_value());
          merged_values.push_back(*value);
        },
        [&](std::uint64_t index, const JournalLoad::Cell&) {
          merged_indices.push_back(index);
          quarantined.push_back(index);
        });

    EXPECT_EQ(stats.cells, kCells) << "shards=" << shards;
    EXPECT_EQ(stats.quarantined, 1u);
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(quarantined[0], 13u);
    ASSERT_EQ(merged_indices.size(), kCells);
    for (std::size_t i = 0; i < kCells; ++i) {
      EXPECT_EQ(merged_indices[i], i);
    }
    std::size_t at = 0;
    for (std::size_t i = 0; i < kCells; ++i) {
      if (i == 13) continue;
      EXPECT_EQ(merged_values[at++], cell_value(specs[i]));
    }

    // A missing shard journal must fail the merge, never fabricate cells.
    std::remove(shard_journal_path(base, 0).c_str());
    EXPECT_THROW(merge_shard_journals(
                     base, shards, identity, kCells,
                     [](std::uint64_t, std::string_view) {},
                     [](std::uint64_t, const JournalLoad::Cell&) {}),
                 JournalError);
    for (int k = 1; k < shards; ++k) {
      std::remove(shard_journal_path(base, k).c_str());
    }
  }
}

}  // namespace
}  // namespace lazyeye::campaign
