// lazylint conformance tests: every rule must catch its violation fixture,
// every annotated fixture must pass, suppression hygiene must be enforced,
// and the real tree must lint clean (the same invariant the `lint` ctest
// entry and the CI static-analysis job enforce via the CLI).
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace {

using lazyeye::lint::Finding;
using lazyeye::lint::Rule;

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Scans a fixture file as if it lived at `rel_path` in the repo.
std::vector<Finding> scan_fixture(const std::string& fixture,
                                  const std::string& rel_path) {
  const std::string content =
      read_file(std::string{LAZYLINT_FIXTURE_DIR} + "/" + fixture);
  return lazyeye::lint::scan_source(rel_path, content);
}

std::size_t count_rule(const std::vector<Finding>& findings, Rule rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string render(const std::vector<Finding>& findings) {
  return lazyeye::lint::format_findings(findings);
}

// ---------------------------------------------------------------- rules ----

TEST(LazylintRules, NondeterminismViolationsAllCaught) {
  const auto findings =
      scan_fixture("nondeterminism_violation.cc", "src/he/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kNondeterminism), 6u)
      << render(findings);
  EXPECT_EQ(findings.size(), 6u) << render(findings);
}

TEST(LazylintRules, NondeterminismAnnotatedScansClean) {
  const auto findings =
      scan_fixture("nondeterminism_annotated.cc", "src/he/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, NondeterminismOutOfScopeInBench) {
  // Benches legitimately time campaigns with wall clocks; the rule is
  // scoped to src/.
  const auto findings =
      scan_fixture("nondeterminism_violation.cc", "bench/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, NondeterminismOutOfScopeInUtil) {
  const auto findings =
      scan_fixture("nondeterminism_violation.cc", "src/util/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, UnorderedIterViolationsAllCaught) {
  const auto findings =
      scan_fixture("unordered_iter_violation.cc", "src/campaign/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 3u)
      << render(findings);
  EXPECT_EQ(findings.size(), 3u) << render(findings);
}

TEST(LazylintRules, UnorderedIterAnnotatedScansClean) {
  const auto findings =
      scan_fixture("unordered_iter_annotated.cc", "src/campaign/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, PtrOrderViolationsAllCaught) {
  const auto findings =
      scan_fixture("ptr_order_violation.cc", "src/campaign/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kPtrOrder), 3u) << render(findings);
  EXPECT_EQ(findings.size(), 3u) << render(findings);
}

TEST(LazylintRules, PtrOrderAnnotatedScansClean) {
  const auto findings =
      scan_fixture("ptr_order_annotated.cc", "src/campaign/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, RawAllocViolationsAllCaught) {
  const auto findings =
      scan_fixture("raw_alloc_violation.cc", "src/simnet/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kRawAlloc), 5u) << render(findings);
  EXPECT_EQ(findings.size(), 5u) << render(findings);
}

TEST(LazylintRules, RawAllocAnnotatedScansClean) {
  const auto findings =
      scan_fixture("raw_alloc_annotated.cc", "src/simnet/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, RawAllocOutOfScopeOutsidePooledDirs) {
  const auto findings =
      scan_fixture("raw_alloc_violation.cc", "src/campaign/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, RawAllocExemptInPoolImplementations) {
  // The arena/pool implementations are the one place raw allocation is the
  // point.
  const auto findings =
      scan_fixture("raw_alloc_violation.cc", "src/simnet/arena.h");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, StdFunctionViolationsAllCaught) {
  const auto findings =
      scan_fixture("std_function_violation.cc", "src/simnet/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kStdFunction), 2u) << render(findings);
  EXPECT_EQ(findings.size(), 2u) << render(findings);
}

TEST(LazylintRules, StdFunctionAnnotatedScansClean) {
  const auto findings =
      scan_fixture("std_function_annotated.cc", "src/simnet/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, StdFunctionOutOfScopeOutsideSimnet) {
  const auto findings =
      scan_fixture("std_function_violation.cc", "src/dns/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, UnseededRngViolationsAllCaught) {
  const auto findings =
      scan_fixture("unseeded_rng_violation.cc", "src/campaign/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kUnseededRng), 6u) << render(findings);
  EXPECT_EQ(findings.size(), 6u) << render(findings);
}

TEST(LazylintRules, UnseededRngAnnotatedScansClean) {
  const auto findings =
      scan_fixture("unseeded_rng_annotated.cc", "src/campaign/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, UnseededRngControlHasNoFalsePositives) {
  // Engine class definitions, init-list-seeded members, `Rng fork();`
  // declarations, reference params, and seeded constructions stay legal.
  const auto findings =
      scan_fixture("unseeded_rng_control.cc", "src/campaign/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, UnseededRngInScopeInUtil) {
  // Unlike nondeterminism, the rule covers src/util/ — the engine
  // implementations must thread seeds explicitly too.
  const auto findings =
      scan_fixture("unseeded_rng_violation.cc", "src/util/fixture.cc");
  EXPECT_EQ(count_rule(findings, Rule::kUnseededRng), 6u) << render(findings);
}

TEST(LazylintRules, UnseededRngOutOfScopeInTests) {
  const auto findings =
      scan_fixture("unseeded_rng_violation.cc", "tests/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(LazylintRules, CleanFixtureHasNoFalsePositives) {
  // Scanned under src/simnet/ where every rule is in scope; the fixture is
  // all lookalikes (banned words in comments/strings, placement new,
  // members named free/time, unordered find/count, deleted functions).
  const auto findings = scan_fixture("clean.cc", "src/simnet/fixture.cc");
  EXPECT_TRUE(findings.empty()) << render(findings);
}

// --------------------------------------------------------- suppressions ----

TEST(LazylintSuppressions, UnusedSuppressionIsReported) {
  const auto findings = lazyeye::lint::scan_source(
      "src/campaign/fixture.cc",
      "int x = 1;  // lazylint: ptr-order-ok(nothing to suppress here)\n");
  ASSERT_EQ(findings.size(), 1u) << render(findings);
  EXPECT_EQ(findings[0].rule, Rule::kSuppression);
  EXPECT_NE(findings[0].message.find("unused"), std::string::npos);
}

TEST(LazylintSuppressions, EmptyReasonIsReported) {
  const auto findings = lazyeye::lint::scan_source(
      "src/campaign/fixture.cc",
      "std::map<int*, int> by_addr;  // lazylint: ptr-order-ok()\n");
  ASSERT_EQ(findings.size(), 1u) << render(findings);
  EXPECT_EQ(findings[0].rule, Rule::kSuppression);
  EXPECT_NE(findings[0].message.find("reason"), std::string::npos);
}

TEST(LazylintSuppressions, UnknownRuleNameIsReported) {
  const auto findings = lazyeye::lint::scan_source(
      "src/campaign/fixture.cc",
      "int x = 1;  // lazylint: no-such-rule-ok(whatever)\n");
  ASSERT_EQ(findings.size(), 1u) << render(findings);
  EXPECT_EQ(findings[0].rule, Rule::kSuppression);
  EXPECT_NE(findings[0].message.find("unknown rule"), std::string::npos);
}

TEST(LazylintSuppressions, SuppressionOnlyCoversItsRule) {
  // A nondeterminism suppression must not hide a ptr-order finding on the
  // same line.
  const auto findings = lazyeye::lint::scan_source(
      "src/campaign/fixture.cc",
      "std::map<int*, int> m;  // lazylint: nondeterminism-ok(wrong rule)\n");
  ASSERT_EQ(findings.size(), 2u) << render(findings);
  EXPECT_EQ(count_rule(findings, Rule::kPtrOrder), 1u);
  EXPECT_EQ(count_rule(findings, Rule::kSuppression), 1u);  // unused
}

// ----------------------------------------------------------- whole tree ----

TEST(LazylintTree, RepositoryLintsClean) {
  const lazyeye::lint::TreeReport report =
      lazyeye::lint::scan_tree(LAZYEYE_SOURCE_DIR);
  EXPECT_GT(report.files_scanned, 100);  // src + bench + tests + examples
  EXPECT_TRUE(report.findings.empty()) << render(report.findings);
}

}  // namespace
