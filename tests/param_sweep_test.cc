// Parameterised property sweeps (TEST_P): measurement-pipeline invariants
// across the (client × delay) grid.
#include <gtest/gtest.h>

#include "clients/profiles.h"
#include "testbed/testbed.h"

namespace lazyeye::testbed {
namespace {

using simnet::Family;

// ------------------------------------------------- CAD sweep invariants ----

struct CadCase {
  const char* client;
  int expected_cad_ms;
};

class CadSweep : public ::testing::TestWithParam<std::tuple<CadCase, int>> {};

TEST_P(CadSweep, EstablishedFamilyMatchesCadThreshold) {
  const auto& [cad_case, delay_ms] = GetParam();
  const auto profile = clients::find_client_profile(cad_case.client);
  ASSERT_TRUE(profile) << cad_case.client;

  LocalTestbed bed;
  const auto rec = bed.run_cad_case(*profile, ms(delay_ms));
  ASSERT_TRUE(rec.fetch_ok) << cad_case.client << " @ " << delay_ms << "ms";

  // Invariant 1: the connection is established via IPv6 iff the configured
  // delay is at most the client's CAD (ties go to IPv6: its handshake
  // completes before the freshly started IPv4 one).
  const bool expect_v6 = delay_ms <= cad_case.expected_cad_ms;
  EXPECT_EQ(rec.established_family,
            expect_v6 ? Family::kIpv6 : Family::kIpv4)
      << cad_case.client << " @ " << delay_ms << "ms";

  // Invariant 2: whenever both families were attempted, the capture-derived
  // CAD equals the client's configured value (paper: "any local measurement
  // that uses a delay larger than the client's CAD also observes the CAD").
  if (!expect_v6) {
    ASSERT_TRUE(rec.observed_cad);
    EXPECT_EQ(*rec.observed_cad, ms(cad_case.expected_cad_ms));
  }

  // Invariant 3: the AAAA query always goes out first.
  EXPECT_TRUE(rec.aaaa_query_first);
}

std::string cad_case_name(
    const ::testing::TestParamInfo<std::tuple<CadCase, int>>& info) {
  std::string name = std::get<0>(info.param).client;
  for (char& c : name) {
    if (c == ' ' || c == '.') c = '_';
  }
  return name + "_" + std::to_string(std::get<1>(info.param)) + "ms";
}

INSTANTIATE_TEST_SUITE_P(
    Clients, CadSweep,
    ::testing::Combine(
        ::testing::Values(CadCase{"Chrome 130.0", 300},
                          CadCase{"Edge 130.0", 300},
                          CadCase{"Chromium 130.0", 300},
                          CadCase{"curl 7.88.1", 200}),
        ::testing::Values(0, 50, 100, 150, 200, 250, 300, 350, 400, 600)),
    cad_case_name);

// --------------------------------------------- RD sweep invariants --------

class RdSweep : public ::testing::TestWithParam<int> {};

TEST_P(RdSweep, SafariFallsBackExactlyWhenDelayExceedsRd) {
  const int delay_ms = GetParam();
  LocalTestbed bed;
  const auto rec = bed.run_rd_case(clients::safari_profile("17.6"),
                                   dns::RrType::kAaaa, ms(delay_ms));
  ASSERT_TRUE(rec.fetch_ok);
  // Safari's RD is 50 ms: AAAA answers arriving within it keep IPv6; later
  // ones lose to the IPv4 attempt started at RD expiry.
  const bool expect_v6 = delay_ms < 50;
  EXPECT_EQ(rec.established_family,
            expect_v6 ? Family::kIpv6 : Family::kIpv4)
      << delay_ms << "ms";
  if (!expect_v6) {
    ASSERT_TRUE(rec.observed_rd);
    EXPECT_EQ(*rec.observed_rd, ms(50));
  }
}

INSTANTIATE_TEST_SUITE_P(Delays, RdSweep,
                         ::testing::Values(0, 10, 25, 40, 60, 100, 250, 500,
                                           1000));

// ------------------------------------- address-selection cap invariants ----

class SelectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(SelectionSweep, SafariUsesAllAddressesUpToTen) {
  const int per_family = GetParam();
  LocalTestbed bed;
  const auto rec = bed.run_address_selection_case(
      clients::safari_profile("17.6"), per_family);
  // Safari's cap is 10 per family (Table 2).
  const int expected = std::min(per_family, 10);
  EXPECT_EQ(rec.v6_addresses_used, expected);
  EXPECT_EQ(rec.v4_addresses_used, expected);
  // First attempt is always IPv6 (prefers IPv6).
  ASSERT_FALSE(rec.attempt_sequence.empty());
  EXPECT_EQ(rec.attempt_sequence.front(), Family::kIpv6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectionSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 12));

}  // namespace
}  // namespace lazyeye::testbed
