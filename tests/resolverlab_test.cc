// Resolver lab tests: Table 3 metrics re-measured from the authoritative
// query log, Table 4 IPv6-only capability checks.
#include <gtest/gtest.h>

#include "resolverlab/lab.h"
#include "resolvers/service_profiles.h"

namespace lazyeye::resolverlab {
namespace {

using resolvers::AaaaOrderClass;

LabConfig quick_config() {
  LabConfig config;
  config.delay_grid = {ms(0),   ms(49),  ms(199), ms(375),
                       ms(399), ms(799), ms(1500)};
  config.repetitions = 5;
  config.seed = 17;
  return config;
}

resolvers::ServiceProfile service(const char* name) {
  const auto p = resolvers::find_service_profile(name);
  EXPECT_TRUE(p) << name;
  return *p;
}

TEST(ServiceProfilesTest, RosterSizes) {
  EXPECT_EQ(resolvers::local_software_profiles().size(), 3u);
  EXPECT_EQ(resolvers::open_service_profiles().size(), 17u);
  int capable = 0;
  for (const auto& p : resolvers::open_service_profiles()) {
    if (p.ipv6_resolution_capable) ++capable;
  }
  // 13 of 17 open services can resolve IPv6-only delegations (Table 4).
  EXPECT_EQ(capable, 13);
}

TEST(ServiceProfilesTest, Table4AddressInventory) {
  EXPECT_EQ(service("Quad9 DNS").ipv4_addresses, 6);
  EXPECT_EQ(service("Quad9 DNS").ipv6_addresses, 6);
  EXPECT_EQ(service("114DNS").ipv6_addresses, 0);
  EXPECT_EQ(service("Lumen (Level3)").ipv4_addresses, 4);
  EXPECT_EQ(service("Lumen (Level3)").ipv6_addresses, 0);
}

TEST(ResolverLabTest, BindRow) {
  const auto metrics = measure_service(service("BIND"), quick_config());
  // BIND: A before AAAA for NS names, strict IPv6 preference, 800 ms
  // timeout, single IPv6 packet before the fallback.
  EXPECT_TRUE(metrics.aaaa_order_known);
  EXPECT_EQ(metrics.aaaa_order, AaaaOrderClass::kAfterA);
  EXPECT_DOUBLE_EQ(metrics.ipv6_share, 1.0);
  ASSERT_TRUE(metrics.max_ipv6_delay);
  EXPECT_EQ(*metrics.max_ipv6_delay, ms(799));
  EXPECT_EQ(metrics.max_ipv6_packets, 1);
}

TEST(ResolverLabTest, UnboundRow) {
  LabConfig config = quick_config();
  // Enough repetitions that the 43.8 % IPv6 choice and the 44 % retry gate
  // produce stable majorities per delay bucket.
  config.repetitions = 30;
  const auto metrics = measure_service(service("Unbound"), config);
  EXPECT_EQ(metrics.aaaa_order, AaaaOrderClass::kBeforeA);
  // Probabilistic 43.8 % IPv6 preference.
  EXPECT_NEAR(metrics.ipv6_share, 0.438, 0.15);
  ASSERT_TRUE(metrics.max_ipv6_delay);
  EXPECT_EQ(*metrics.max_ipv6_delay, ms(375));
  // The 44 % same-family retry yields a second IPv6 packet.
  EXPECT_EQ(metrics.max_ipv6_packets, 2);
}

TEST(ResolverLabTest, KnotRowEitherOr) {
  const auto metrics = measure_service(service("Knot Resolver"),
                                       quick_config());
  EXPECT_EQ(metrics.aaaa_order, AaaaOrderClass::kEitherOr);
  ASSERT_TRUE(metrics.max_ipv6_delay);
  EXPECT_EQ(*metrics.max_ipv6_delay, ms(399));
}

TEST(ResolverLabTest, GoogleNeverUsesV6AndDefersAaaa) {
  const auto metrics = measure_service(service("Google P. DNS"),
                                       quick_config());
  EXPECT_EQ(metrics.aaaa_order, AaaaOrderClass::kAfterAuthQuery);
  EXPECT_DOUBLE_EQ(metrics.ipv6_share, 0.0);
  EXPECT_FALSE(metrics.max_ipv6_delay);
  EXPECT_EQ(metrics.max_ipv6_packets, 0);
}

TEST(ResolverLabTest, OpenDnsClassicHappyEyeballs) {
  const auto metrics = measure_service(service("OpenDNS"), quick_config());
  EXPECT_EQ(metrics.aaaa_order, AaaaOrderClass::kBeforeA);
  EXPECT_DOUBLE_EQ(metrics.ipv6_share, 1.0);
  ASSERT_TRUE(metrics.max_ipv6_delay);
  EXPECT_EQ(*metrics.max_ipv6_delay, ms(49));
  EXPECT_EQ(metrics.max_ipv6_packets, 1);
}

TEST(ResolverLabTest, YandexSendsUpToSixV6Packets) {
  LabConfig config;
  config.delay_grid = {ms(0), ms(299), ms(1500)};
  config.repetitions = 6;
  config.seed = 23;
  const auto metrics = measure_service(service("Yandex"), config);
  EXPECT_EQ(metrics.max_ipv6_packets, 6);
}

TEST(ResolverLabTest, Dns0ParallelQueriesFlagged) {
  const auto metrics = measure_service(service("DNS0.EU"), quick_config());
  EXPECT_TRUE(metrics.delay_unmeasurable);  // Table 3 footnote 1
}

TEST(ResolverLabTest, Ipv6OnlyCapability) {
  // Capable services resolve IPv6-only delegations; the four incapable
  // services (Table 4) do not.
  EXPECT_TRUE(check_ipv6_only_capability(service("Cloudflare")));
  EXPECT_TRUE(check_ipv6_only_capability(service("BIND")));
  EXPECT_FALSE(check_ipv6_only_capability(service("HE")));
  EXPECT_FALSE(check_ipv6_only_capability(service("Lumen (Level3)")));
  EXPECT_FALSE(check_ipv6_only_capability(service("DYN")));
  EXPECT_FALSE(check_ipv6_only_capability(service("G-Core")));
}

TEST(ResolverLabTest, PaperGridCoversTable3Timeouts) {
  const auto config = LabConfig::paper_grid();
  EXPECT_GE(config.delay_grid.size(), 12u);
  // The grid brackets every distinctive Table 3 timeout from below.
  for (const int edge_ms : {50, 200, 250, 300, 376, 400, 500, 600, 800, 1250}) {
    bool bracketed = false;
    for (const auto d : config.delay_grid) {
      if (d < ms(edge_ms) && d >= ms(edge_ms) - ms(2)) bracketed = true;
    }
    EXPECT_TRUE(bracketed) << edge_ms;
  }
}

}  // namespace
}  // namespace lazyeye::resolverlab
