#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simnet/buffer.h"
#include "simnet/event_loop.h"
#include "simnet/inline_callback.h"
#include "simnet/ip.h"
#include "simnet/netem.h"
#include "simnet/network.h"
#include "simnet/udp_echo.h"
#include "util/rng.h"

// ---- global operator-new counting proxy (same technique as the benches) ----
// Lets the data-path regression test below assert that a steady-state UDP
// round trip performs zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lazyeye::simnet {
namespace {

using lazyeye::ms;
using lazyeye::us;

// ---------------------------------------------------------- event loop ----

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ms(30), [&] { order.push_back(3); });
  loop.schedule_at(ms(10), [&] { order.push_back(1); });
  loop.schedule_at(ms(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), ms(30));
}

TEST(EventLoopTest, FifoForSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(ms(10), [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired{};
  loop.schedule_at(ms(5), [&] {
    loop.schedule_after(ms(10), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, ms(15));
}

TEST(EventLoopTest, PastDeadlineClampsToNow) {
  EventLoop loop;
  loop.run_until(ms(100));
  SimTime fired{};
  loop.schedule_at(ms(1), [&] { fired = loop.now(); });
  loop.run();
  EXPECT_EQ(fired, ms(100));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const TimerId id = loop.schedule_at(ms(10), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(loop.cancel(id));  // double cancel
}

TEST(EventLoopTest, CancelInvalidIdFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(TimerId{}));
  EXPECT_FALSE(loop.cancel(TimerId{999}));
}

TEST(EventLoopTest, CancelledEventsLeavePendingImmediately) {
  EventLoop loop;
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.schedule_at(ms(i), [] {}));
  }
  EXPECT_EQ(loop.pending(), 100u);
  for (const TimerId id : ids) EXPECT_TRUE(loop.cancel(id));
  EXPECT_EQ(loop.pending(), 0u);
  // Cancelled heap entries are pruned as they surface; none executes.
  loop.run();
  EXPECT_EQ(loop.processed(), 0u);
}

TEST(EventLoopTest, CancelBookkeepingDoesNotAccumulateAcrossRounds) {
  // Long campaigns schedule + cancel endlessly (retransmit timers etc.);
  // after each drained round no cancellation bookkeeping may survive.
  EventLoop loop;
  for (int round = 0; round < 50; ++round) {
    const TimerId keep = loop.schedule_after(ms(1), [] {});
    const TimerId drop = loop.schedule_after(ms(2), [] {});
    EXPECT_TRUE(loop.cancel(drop));
    (void)keep;
    loop.run();
    EXPECT_EQ(loop.pending(), 0u);
  }
  EXPECT_EQ(loop.processed(), 50u);
}

TEST(EventLoopTest, RunUntilSkipsCancelledHeadWithoutAdvancingTime) {
  EventLoop loop;
  const TimerId head = loop.schedule_at(ms(5), [] {});
  bool ran = false;
  loop.schedule_at(ms(50), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(head));
  EXPECT_EQ(loop.run_until(ms(10)), 0u);
  EXPECT_EQ(loop.now(), ms(10));
  EXPECT_FALSE(ran);
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ms(10), [&] { order.push_back(1); });
  loop.schedule_at(ms(20), [&] { order.push_back(2); });
  loop.schedule_at(ms(30), [&] { order.push_back(3); });
  EXPECT_EQ(loop.run_until(ms(20)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), ms(20));
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventLoopTest, RunForAdvancesRelative) {
  EventLoop loop;
  loop.run_for(ms(7));
  EXPECT_EQ(loop.now(), ms(7));
  loop.run_for(ms(3));
  EXPECT_EQ(loop.now(), ms(10));
}

TEST(EventLoopTest, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  loop.schedule_at(ms(1), [&] {
    ++depth;
    loop.schedule_after(ms(1), [&] { ++depth; });
  });
  loop.run();
  EXPECT_EQ(depth, 2);
}

TEST(EventLoopTest, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  int ran = 0;
  const TimerId id = loop.schedule_at(ms(1), [&] { ++ran; });
  loop.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(loop.cancel(id));  // already executed
  EXPECT_FALSE(loop.cancel(id));  // still false on repeat
}

TEST(EventLoopTest, RecycledSlotsDoNotAliasStaleTimerIds) {
  // After a timer fires, its liveness slot is recycled under a bumped
  // generation: a held-over TimerId from the previous occupant must neither
  // cancel nor observe the new timer.
  EventLoop loop;
  int first = 0;
  const TimerId stale = loop.schedule_at(ms(1), [&] { ++first; });
  loop.run();
  ASSERT_EQ(first, 1);

  int second = 0;
  const TimerId fresh = loop.schedule_at(ms(2), [&] { ++second; });
  EXPECT_FALSE(loop.cancel(stale));  // must not hit the recycled slot
  EXPECT_EQ(loop.pending(), 1u);     // fresh timer untouched
  loop.run();
  EXPECT_EQ(second, 1);
  EXPECT_FALSE(loop.cancel(fresh));
}

TEST(EventLoopTest, SlotRecyclingSurvivesHeavyChurn) {
  // Schedule/cancel/fire churn across recycled slots: ids stay unique, no
  // stale handle ever cancels a later timer, and pending() stays exact.
  EventLoop loop;
  std::vector<TimerId> fired_ids;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    const TimerId run_me = loop.schedule_after(ms(1), [&] { ++fired; });
    const TimerId drop_me = loop.schedule_after(ms(2), [&] { ++fired; });
    EXPECT_TRUE(loop.cancel(drop_me));
    EXPECT_EQ(loop.pending(), 1u);
    loop.run();
    EXPECT_EQ(loop.pending(), 0u);
    for (const TimerId old : fired_ids) {
      EXPECT_FALSE(loop.cancel(old));  // every historic id stays dead
    }
    if (fired_ids.size() < 8) fired_ids.push_back(run_me);
  }
  EXPECT_EQ(fired, 200);
}

TEST(EventLoopTest, CancelDuringCallbackOfSameTimestampBatch) {
  // A callback cancelling a timer scheduled for the same instant: the
  // cancelled one must not run even though its node is already in the heap.
  EventLoop loop;
  int ran = 0;
  TimerId second{};
  loop.schedule_at(ms(5), [&] { EXPECT_TRUE(loop.cancel(second)); ++ran; });
  second = loop.schedule_at(ms(5), [&] { ran += 100; });
  loop.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.pending(), 0u);
}

// ------------------------------------------------------ inline callback ----

TEST(InlineCallbackTest, SmallCapturesStayInline) {
  int counter = 0;
  InlineCallback cb{[&counter] { ++counter; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());
  cb();
  cb();
  EXPECT_EQ(counter, 2);
}

TEST(InlineCallbackTest, LargeCapturesFallBackToHeapAndStillRun) {
  struct Big {
    char bytes[128];
  } big{};
  big.bytes[0] = 42;
  int seen = 0;
  InlineCallback cb{[big, &seen] { seen = big.bytes[0]; }};
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallbackTest, MovePreservesCallableAndEmptiesSource) {
  int counter = 0;
  InlineCallback a{[&counter] { ++counter; }};
  InlineCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  b();
  EXPECT_EQ(counter, 1);

  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(counter, 2);
}

TEST(InlineCallbackTest, DestructorRunsForBothStorageModes) {
  auto tracker = std::make_shared<int>(0);
  {
    InlineCallback small{[tracker] { ++*tracker; }};
    struct Big {
      char pad[100];
    };
    InlineCallback big{[tracker, pad = Big{}] { (void)pad; ++*tracker; }};
    EXPECT_EQ(tracker.use_count(), 3);
  }
  EXPECT_EQ(tracker.use_count(), 1);  // both captures destroyed
}

// ------------------------------------------------------------------ ip ----

TEST(IpTest, ParseV4) {
  const auto a = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value, 0xc0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(IpTest, ParseV4Rejects) {
  EXPECT_FALSE(Ipv4Address::parse("192.0.2"));
  EXPECT_FALSE(Ipv4Address::parse("192.0.2.256"));
  EXPECT_FALSE(Ipv4Address::parse("192.0.2.1.5"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
}

TEST(IpTest, ParseV6Full) {
  const auto a = Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IpTest, ParseV6Compressed) {
  const auto a = Ipv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
  for (int i = 2; i < 7; ++i) EXPECT_EQ(a->group(i), 0);
}

TEST(IpTest, ParseV6Unspecified) {
  const auto a = Ipv6Address::parse("::");
  ASSERT_TRUE(a);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a->group(i), 0);
  EXPECT_EQ(a->to_string(), "::");
}

TEST(IpTest, ParseV6LeadingTrailingGap) {
  EXPECT_TRUE(Ipv6Address::parse("::1"));
  EXPECT_TRUE(Ipv6Address::parse("fe80::"));
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("fe80::")->to_string(), "fe80::");
}

TEST(IpTest, ParseV6Rejects) {
  EXPECT_FALSE(Ipv6Address::parse(""));
  EXPECT_FALSE(Ipv6Address::parse("::1::2"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::"));
  EXPECT_FALSE(Ipv6Address::parse("12345::"));
  EXPECT_FALSE(Ipv6Address::parse("g::1"));
}

TEST(IpTest, V6CanonicalFormRfc5952) {
  // Longest zero run wins; ties go to the first run.
  EXPECT_EQ(Ipv6Address::parse("2001:0:0:1:0:0:0:1")->to_string(),
            "2001:0:0:1::1");
  EXPECT_EQ(Ipv6Address::parse("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");  // single zero group not compressed
  // Trailing run (5 groups) is longer than the leading one (2 groups).
  EXPECT_EQ(Ipv6Address::parse("0:0:1::")->to_string(), "0:0:1::");
  EXPECT_EQ(Ipv6Address::parse("::1:0:0")->to_string(), "::1:0:0");
}

TEST(IpTest, IpAddressParseDispatch) {
  EXPECT_TRUE(IpAddress::parse("10.0.0.1")->is_v4());
  EXPECT_TRUE(IpAddress::parse("::1")->is_v6());
  EXPECT_FALSE(IpAddress::parse("not-an-ip"));
  EXPECT_THROW(IpAddress::must_parse("nope"), std::invalid_argument);
}

TEST(IpTest, EndpointFormatting) {
  const Endpoint v4{IpAddress::must_parse("10.0.0.1"), 80};
  EXPECT_EQ(v4.to_string(), "10.0.0.1:80");
  const Endpoint v6{IpAddress::must_parse("2001:db8::1"), 443};
  EXPECT_EQ(v6.to_string(), "[2001:db8::1]:443");
}

TEST(IpTest, ComparisonAndHash) {
  const auto a = IpAddress::must_parse("10.0.0.1");
  const auto b = IpAddress::must_parse("10.0.0.2");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, IpAddress::must_parse("10.0.0.1"));
  EXPECT_NE(a.hash(), b.hash());
  const auto v6 = IpAddress::must_parse("::ffff");
  EXPECT_NE(a.hash(), v6.hash());
}

// --------------------------------------------------------------- netem ----

Packet make_packet(const std::string& src, const std::string& dst,
                   Protocol proto = Protocol::kUdp, std::uint16_t dport = 53) {
  Packet p;
  p.proto = proto;
  p.src = {IpAddress::must_parse(src), 10000};
  p.dst = {IpAddress::must_parse(dst), dport};
  return p;
}

TEST(NetemTest, EmptyQdiscPassesThrough) {
  NetemQdisc q;
  Rng rng{1};
  const auto v = q.process(make_packet("10.0.0.1", "10.0.0.2"), rng);
  EXPECT_FALSE(v.dropped);
  EXPECT_EQ(v.extra_delay, SimTime{0});
}

TEST(NetemTest, FamilyFilterDelaysOnlyThatFamily) {
  NetemQdisc q;
  q.add_rule(PacketFilter::for_family(Family::kIpv6),
             NetemSpec::delay_only(ms(100)), "delay v6");
  Rng rng{1};
  const auto v6 = q.process(make_packet("2001:db8::1", "2001:db8::2"), rng);
  EXPECT_EQ(v6.extra_delay, ms(100));
  const auto v4 = q.process(make_packet("10.0.0.1", "10.0.0.2"), rng);
  EXPECT_EQ(v4.extra_delay, SimTime{0});
}

TEST(NetemTest, FirstMatchWins) {
  NetemQdisc q;
  q.add_rule(PacketFilter::to_address(IpAddress::must_parse("10.0.0.9")),
             NetemSpec::delay_only(ms(50)));
  q.add_rule(PacketFilter::any(), NetemSpec::delay_only(ms(5)));
  Rng rng{1};
  EXPECT_EQ(q.process(make_packet("10.0.0.1", "10.0.0.9"), rng).extra_delay,
            ms(50));
  EXPECT_EQ(q.process(make_packet("10.0.0.1", "10.0.0.8"), rng).extra_delay,
            ms(5));
}

TEST(NetemTest, PortAndProtocolFilters) {
  NetemQdisc q;
  PacketFilter f;
  f.proto = Protocol::kTcp;
  f.dst_port = 443;
  q.add_rule(f, NetemSpec::delay_only(ms(30)));
  Rng rng{1};
  EXPECT_EQ(
      q.process(make_packet("10.0.0.1", "10.0.0.2", Protocol::kTcp, 443), rng)
          .extra_delay,
      ms(30));
  EXPECT_EQ(
      q.process(make_packet("10.0.0.1", "10.0.0.2", Protocol::kUdp, 443), rng)
          .extra_delay,
      SimTime{0});
  EXPECT_EQ(
      q.process(make_packet("10.0.0.1", "10.0.0.2", Protocol::kTcp, 80), rng)
          .extra_delay,
      SimTime{0});
}

TEST(NetemTest, JitterStaysWithinBounds) {
  NetemQdisc q;
  q.add_rule(PacketFilter::any(), NetemSpec{ms(100), ms(20), 0.0});
  Rng rng{42};
  bool varied = false;
  SimTime first{-1};
  for (int i = 0; i < 200; ++i) {
    const auto v = q.process(make_packet("10.0.0.1", "10.0.0.2"), rng);
    EXPECT_GE(v.extra_delay, ms(80));
    EXPECT_LE(v.extra_delay, ms(120));
    if (first.count() < 0) {
      first = v.extra_delay;
    } else if (v.extra_delay != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(NetemTest, LossDropsApproximately) {
  NetemQdisc q;
  q.add_rule(PacketFilter::any(), NetemSpec{SimTime{0}, SimTime{0}, 0.25});
  Rng rng{42};
  int dropped = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (q.process(make_packet("10.0.0.1", "10.0.0.2"), rng).dropped) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kTrials, 0.25, 0.03);
}

// ---------------------------------------------------------- host/network --

TEST(NetworkTest, UdpDelivery) {
  Network net{1};
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  b.add_address(IpAddress::must_parse("10.0.0.2"));

  std::vector<std::uint8_t> received;
  SimTime arrival{};
  b.udp_bind(53, [&](const Packet& p) {
    received.assign(p.payload.begin(), p.payload.end());
    arrival = net.loop().now();
  });

  a.udp_send({IpAddress::must_parse("10.0.0.1"), 5555},
             {IpAddress::must_parse("10.0.0.2"), 53}, {1, 2, 3});
  net.loop().run();

  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(arrival, net.base_delay());
  EXPECT_EQ(net.stats().packets_delivered, 1u);
}

TEST(NetworkTest, BlackholedWhenNoHostOwnsAddress) {
  Network net{1};
  Host& a = net.add_host("a");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  a.udp_send({IpAddress::must_parse("10.0.0.1"), 5555},
             {IpAddress::must_parse("10.0.0.99"), 53}, Buffer{});
  net.loop().run();
  EXPECT_EQ(net.stats().packets_blackholed, 1u);
  EXPECT_EQ(net.stats().packets_delivered, 0u);
}

TEST(NetworkTest, EgressNetemDelaysDelivery) {
  Network net{1};
  net.set_base_delay(SimTime{0});
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.add_address(IpAddress::must_parse("2001:db8::1"));
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  b.add_address(IpAddress::must_parse("2001:db8::2"));
  b.add_address(IpAddress::must_parse("10.0.0.2"));
  a.egress().add_rule(PacketFilter::for_family(Family::kIpv6),
                      NetemSpec::delay_only(ms(200)));

  SimTime v6_arrival{-1};
  SimTime v4_arrival{-1};
  b.udp_bind(53, [&](const Packet& p) {
    if (p.family() == Family::kIpv6) {
      v6_arrival = net.loop().now();
    } else {
      v4_arrival = net.loop().now();
    }
  });

  a.udp_send({IpAddress::must_parse("2001:db8::1"), 5000},
             {IpAddress::must_parse("2001:db8::2"), 53}, Buffer{});
  a.udp_send({IpAddress::must_parse("10.0.0.1"), 5000},
             {IpAddress::must_parse("10.0.0.2"), 53}, Buffer{});
  net.loop().run();

  EXPECT_EQ(v6_arrival, ms(200));
  EXPECT_EQ(v4_arrival, SimTime{0});
}

TEST(NetworkTest, SendFromUnownedAddressThrows) {
  Network net{1};
  Host& a = net.add_host("a");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  EXPECT_THROW(a.udp_send({IpAddress::must_parse("10.9.9.9"), 1},
                          {IpAddress::must_parse("10.0.0.2"), 53}, Buffer{}),
               std::logic_error);
}

TEST(NetworkTest, FamilyMismatchThrows) {
  Network net{1};
  Host& a = net.add_host("a");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  EXPECT_THROW(a.udp_send({IpAddress::must_parse("10.0.0.1"), 1},
                          {IpAddress::must_parse("2001:db8::1"), 53}, Buffer{}),
               std::logic_error);
}

TEST(NetworkTest, TapsSeeBothDirections) {
  Network net{1};
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  b.add_address(IpAddress::must_parse("10.0.0.2"));
  b.udp_bind(53, [](const Packet&) {});

  int egress_seen = 0;
  int ingress_seen = 0;
  a.add_tap([&](const Packet&, TapDirection d) {
    if (d == TapDirection::kEgress) ++egress_seen;
  });
  const int tap_b = b.add_tap([&](const Packet&, TapDirection d) {
    if (d == TapDirection::kIngress) ++ingress_seen;
  });

  a.udp_send({IpAddress::must_parse("10.0.0.1"), 1},
             {IpAddress::must_parse("10.0.0.2"), 53}, Buffer{});
  net.loop().run();
  EXPECT_EQ(egress_seen, 1);
  EXPECT_EQ(ingress_seen, 1);

  b.remove_tap(tap_b);
  a.udp_send({IpAddress::must_parse("10.0.0.1"), 1},
             {IpAddress::must_parse("10.0.0.2"), 53}, Buffer{});
  net.loop().run();
  EXPECT_EQ(ingress_seen, 1);  // tap removed
}

TEST(NetworkTest, EphemeralPortsCycle) {
  Network net{1};
  Host& a = net.add_host("a");
  const auto p1 = a.ephemeral_port();
  const auto p2 = a.ephemeral_port();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
}

TEST(NetworkTest, FindHostAndRoute) {
  Network net{1};
  Host& a = net.add_host("alpha");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  EXPECT_EQ(net.find_host("alpha"), &a);
  EXPECT_EQ(net.find_host("missing"), nullptr);
  EXPECT_EQ(net.route(IpAddress::must_parse("10.0.0.1")), &a);
  EXPECT_EQ(net.route(IpAddress::must_parse("10.0.0.2")), nullptr);
}

TEST(PacketTest, SummaryAndWireSize) {
  Packet p = make_packet("10.0.0.1", "10.0.0.2", Protocol::kTcp, 80);
  p.tcp.syn = true;
  EXPECT_NE(p.summary().find("[S]"), std::string::npos);
  EXPECT_EQ(p.wire_size(), 40u);  // 20 IPv4 + 20 TCP
  Packet u = make_packet("2001:db8::1", "2001:db8::2");
  u.payload.resize(12);
  EXPECT_EQ(u.wire_size(), 40u + 8u + 12u);
}

// -------------------------------------------------------------- buffers ----

TEST(BufferTest, SmallPayloadStaysInline) {
  BufferPool pool;
  Buffer b{&pool};
  for (std::uint8_t i = 0; i < Buffer::kInlineCapacity; ++i) b.push_back(i);
  EXPECT_TRUE(b.is_inline());
  EXPECT_EQ(b.size(), Buffer::kInlineCapacity);
  EXPECT_EQ(pool.acquires(), 0u);
  b.push_back(0xFF);  // one past capacity promotes to a pooled block
  EXPECT_FALSE(b.is_inline());
  EXPECT_EQ(b.size(), Buffer::kInlineCapacity + 1);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[Buffer::kInlineCapacity], 0xFF);
  EXPECT_EQ(pool.acquires(), 1u);
}

TEST(BufferTest, BlocksRecycleThroughThePool) {
  BufferPool pool;
  const std::vector<std::uint8_t> bytes(100, 0xAB);
  {
    Buffer b{&pool, bytes};
    EXPECT_FALSE(b.is_inline());
  }  // block released back to the pool
  EXPECT_EQ(pool.idle(), 1u);
  Buffer c{&pool, bytes};
  EXPECT_EQ(pool.acquires(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);  // second acquisition was a free-list hit
  EXPECT_TRUE(std::equal(c.begin(), c.end(), bytes.begin(), bytes.end()));
}

TEST(BufferTest, MoveStealsBlockAndCopyIsUnpooled) {
  BufferPool pool;
  const std::vector<std::uint8_t> bytes(64, 0x42);
  Buffer a{&pool, bytes};

  // A copy must not reference the pool: captures can outlive the Network.
  Buffer copy = a;
  EXPECT_EQ(copy.pool(), nullptr);
  EXPECT_EQ(copy, a);

  Buffer moved = std::move(a);
  EXPECT_EQ(moved.size(), bytes.size());
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_EQ(pool.reuses(), 0u);  // the move did not touch the pool
}

TEST(BufferTest, AdoptWrapsVectorWithoutCopy) {
  std::vector<std::uint8_t> v{1, 2, 3, 4};
  const std::uint8_t* data = v.data();
  Buffer b = Buffer::adopt(std::move(v));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 4u);
}

TEST(BufferTest, ClearKeepsStorageAndResizeZeroFills) {
  BufferPool pool;
  Buffer b{&pool};
  b.resize(64);
  const std::uint8_t* block = b.data();
  b.clear();
  EXPECT_EQ(b.size(), 0u);
  b.resize(64);
  EXPECT_EQ(b.data(), block);  // same block, no pool round trip
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(b[63], 0u);
}

// ---------------------------------------------------------- timer wheel ----

TEST(TimerWheelTest, NearTimersUseTheWheelFarTimersTheHeap) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_after(us(50), [&] { ++fired; });    // level 0
  loop.schedule_after(ms(100), [&] { ++fired; });   // level 1
  loop.schedule_after(sec(10), [&] { ++fired; });   // beyond the horizon
  EXPECT_EQ(loop.wheel_scheduled(), 2u);
  EXPECT_EQ(loop.heap_scheduled(), 1u);
  loop.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.now(), sec(10));
}

TEST(TimerWheelTest, SubTickOrderIsExact) {
  // Distinct nanosecond times inside one ~1 us wheel tick must still run in
  // (when, seq) order.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ns(900), [&] { order.push_back(2); });
  loop.schedule_at(ns(100), [&] { order.push_back(1); });
  loop.schedule_at(ns(900), [&] { order.push_back(3); });  // same ns: by seq
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, OrderMatchesReferenceModelUnderChurn) {
  // Fuzz schedule/cancel across every band (sub-tick, L0, L1, heap) and
  // check the execution order against a (when, seq) reference sort.
  Rng rng{7};
  EventLoop loop;
  struct Expected {
    SimTime when;
    std::uint64_t seq;
  };
  std::vector<Expected> expected;
  std::vector<std::uint64_t> executed;
  std::vector<TimerId> ids;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t band = rng.next_below(4);
    SimTime delay{};
    switch (band) {
      case 0: delay = ns(static_cast<std::int64_t>(rng.next_below(1000))); break;
      case 1: delay = us(static_cast<std::int64_t>(rng.next_below(4000))); break;
      case 2: delay = ms(static_cast<std::int64_t>(rng.next_below(2000))); break;
      default: delay = sec(2 + static_cast<std::int64_t>(rng.next_below(8)));
    }
    const std::uint64_t this_seq = seq++;
    const SimTime when = loop.now() + delay;
    ids.push_back(loop.schedule_after(
        delay, [&executed, this_seq] { executed.push_back(this_seq); }));
    if (rng.chance(0.25)) {
      loop.cancel(ids.back());
    } else {
      expected.push_back(Expected{when, this_seq});
    }
  }
  EXPECT_GT(loop.wheel_scheduled(), 0u);
  EXPECT_GT(loop.heap_scheduled(), 0u);
  loop.run();
  std::sort(expected.begin(), expected.end(),
            [](const Expected& a, const Expected& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  ASSERT_EQ(executed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(executed[i], expected[i].seq) << "at index " << i;
  }
}

TEST(TimerWheelTest, EventBeforeAStagedLaterTickRunsFirst) {
  // Regression: run_until can leave a wheel tick staged; an event scheduled
  // afterwards *before* that tick must still run first (the staged
  // remainder is pushed back into the wheel).
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(sec(2), [&] { order.push_back(2); });  // level 1
  loop.run_until(sec(2) - ms(1));  // cascades + stages the 2 s tick
  loop.schedule_after(us(10), [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheelTest, CancelledTimersSurviveRunUntilJumps) {
  EventLoop loop;
  int fired = 0;
  std::vector<TimerId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.schedule_after(ms(1 + i), [&] { ++fired; }));
  }
  for (const TimerId id : ids) EXPECT_TRUE(loop.cancel(id));
  EXPECT_EQ(loop.pending(), 0u);
  // Jump far past every cancelled slot, then schedule fresh timers: the
  // stale window is purged and the wheel re-anchors.
  loop.run_until(sec(30));
  EXPECT_EQ(fired, 0);
  loop.schedule_after(ms(5), [&] { ++fired; });
  loop.schedule_after(ms(500), [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), sec(30) + ms(500));
}

TEST(TimerWheelTest, ChainedSameTickSchedulingRunsInOneTick) {
  EventLoop loop;
  int depth = 0;
  struct Chain {
    EventLoop* loop;
    int* depth;
    void operator()() const {
      if (++*depth < 5) loop->schedule_after(SimTime{0}, *this);
    }
  };
  loop.schedule_at(ms(1), Chain{&loop, &depth});
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), ms(1));
}

// ------------------------------------------------- flat dispatch safety ----

TEST(NetworkTest, HandlerMayRebindDuringDispatch) {
  Network net{1};
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  b.add_address(IpAddress::must_parse("10.0.0.2"));

  std::vector<std::string> got;
  // First packet's handler unbinds itself and binds a different port —
  // mutations are deferred until the dispatch returns.
  b.udp_bind(100, [&](const Packet&) {
    got.push_back("first");
    b.udp_unbind(100);
    b.udp_bind(200, [&](const Packet&) { got.push_back("second"); });
  });

  const Endpoint src{IpAddress::must_parse("10.0.0.1"), 5555};
  const Endpoint dst100{IpAddress::must_parse("10.0.0.2"), 100};
  const Endpoint dst200{IpAddress::must_parse("10.0.0.2"), 200};
  a.udp_send(src, dst100, Buffer{});
  net.loop().run();
  a.udp_send(src, dst100, Buffer{});  // now unbound: dropped
  a.udp_send(src, dst200, Buffer{});
  net.loop().run();
  EXPECT_EQ(got, (std::vector<std::string>{"first", "second"}));
}

TEST(NetworkTest, PendingPooledBuffersSurviveNetworkDestruction) {
  // A timer closure owning a pool-backed Buffer (the AuthServer delayed-
  // response shape) may still be pending when the Network dies; the pool
  // must outlive the loop's remaining callbacks (destruction order).
  Network net{1};
  Buffer wire{&net.buffer_pool()};
  wire.resize(100);  // pool-backed block
  net.loop().schedule_after(sec(5), [wire = std::move(wire)]() mutable {
    wire.clear();
  });
  // ~Network runs here with the callback (and its Buffer) still queued.
}

TEST(NetworkTest, ThrowingHandlerDoesNotWedgeDispatch) {
  Network net{1};
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  a.add_address(IpAddress::must_parse("10.0.0.1"));
  b.add_address(IpAddress::must_parse("10.0.0.2"));
  const Endpoint src{IpAddress::must_parse("10.0.0.1"), 5555};
  const Endpoint dst{IpAddress::must_parse("10.0.0.2"), 100};

  b.udp_bind(100, [](const Packet&) { throw std::runtime_error("boom"); });
  a.udp_send(src, dst, Buffer{});
  EXPECT_THROW(net.loop().run(), std::runtime_error);

  // The dispatch depth must have unwound: a rebind takes effect normally.
  int got = 0;
  b.udp_bind(100, [&](const Packet&) { ++got; });
  a.udp_send(src, dst, Buffer{});
  net.loop().run();
  EXPECT_EQ(got, 1);
}

// -------------------------------------- data-path allocation regression ----

TEST(DataPathAllocationTest, SteadyStateUdpEchoAllocatesNothing) {
  Network net{1};
  UdpEchoHarness echo{net};  // same harness the CI smoke gate measures

  // Warm-up: grows the buffer pool, flight-slot table, wheel node pool and
  // dispatch tables to their steady-state high-water marks.
  echo.run_rounds(64);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t delivered_before = net.stats().packets_delivered;
  echo.run_rounds(256);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t delivered =
      net.stats().packets_delivered - delivered_before;

  EXPECT_GE(delivered, 512u);  // 2 deliveries per round trip
  EXPECT_EQ(after - before, 0u)
      << "steady-state UDP delivery touched the heap ("
      << (after - before) << " allocations over " << delivered
      << " delivered packets)";
}

}  // namespace
}  // namespace lazyeye::simnet
