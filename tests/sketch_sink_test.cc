// SketchSink determinism and equivalence tests.
//
// The streaming-sketch sinks exist so huge campaigns can fold CDF-style
// summaries in O(1) memory — but only if the fold is deterministic. The
// runner delivers cells in spec order at every worker count (sink.h
// contract), so the complete sketch state (count/sum/min/max plus all P²
// marker state) must be BIT-identical for 1, 2, 4 and 8 workers; the
// fingerprint strings make that comparison exact. A second set of checks
// pins the sketch to ground truth computed from a CollectingSink pass over
// the same stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "campaign/sketch.h"

namespace lazyeye::campaign {
namespace {

std::vector<ScenarioSpec> numbered_specs(std::size_t n) {
  std::vector<ScenarioSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].id = i;
    specs[i].seed = 100 + i;
  }
  return specs;
}

// Deterministic, spread-out scalar per cell (a splitmix64 step mapped into
// [0, 1000)): a stand-in for a per-cell measurement like completion time.
double cell_value(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z % 1'000'000) / 1000.0;
}

// The executor sleeps nothing and allocates nothing interesting — the
// determinism risk lives entirely in delivery order, which is the point.
std::function<double(const ScenarioSpec&)> value_executor() {
  return [](const ScenarioSpec& spec) { return cell_value(spec.seed); };
}

SketchSink<double> make_sink() {
  SketchSink<double> sink;
  sink.add_metric("value", [](const ScenarioSpec&, const double& v) {
    return std::optional<double>{v};
  });
  // A sparse metric: only every third cell reports, so skip handling is
  // exercised by the same matrix.
  sink.add_metric("sparse", [](const ScenarioSpec& spec, const double& v)
                      -> std::optional<double> {
    if (spec.id % 3 != 0) return std::nullopt;
    return v * 2.0;
  });
  return sink;
}

TEST(SketchSinkTest, BitIdenticalStateAcrossWorkerCounts) {
  const auto specs = numbered_specs(257);  // odd size: uneven worker shards
  const auto executor = value_executor();

  std::string serial_fingerprint;
  for (const int workers : {1, 2, 4, 8}) {
    RunnerOptions options;
    options.workers = workers;
    const CampaignRunner runner{options};

    SketchSink<double> sink = make_sink();
    runner.run_streaming<double>(specs, executor, sink);

    EXPECT_EQ(sink.cells_seen(), specs.size());
    const std::string fingerprint = sink.fingerprint();
    if (workers == 1) {
      serial_fingerprint = fingerprint;
      ASSERT_FALSE(serial_fingerprint.empty());
    } else {
      EXPECT_EQ(fingerprint, serial_fingerprint)
          << "sketch state diverged at " << workers << " workers";
    }
  }
}

TEST(SketchSinkTest, MatchesCollectingSinkGroundTruth) {
  const auto specs = numbered_specs(100);
  const auto executor = value_executor();
  RunnerOptions options;
  options.workers = 4;
  const CampaignRunner runner{options};

  // One campaign pass feeds both sinks through a tee.
  CollectingSink<double> collected;
  SketchSink<double> sketched = make_sink();
  TeeSink<double> tee{collected, sketched};
  runner.run_streaming<double>(specs, executor, tee);

  const auto& outcomes = collected.result().outcomes;
  ASSERT_EQ(outcomes.size(), specs.size());

  // Fold the materialised outcomes in delivery order with the same
  // operations the sketch uses: count/sum/min/max must match exactly.
  std::uint64_t count = 0;
  double sum = 0.0, lo = 0.0, hi = 0.0;
  for (const double v : outcomes) {
    ++count;
    sum += v;
    if (count == 1 || v < lo) lo = v;
    if (count == 1 || v > hi) hi = v;
  }
  const MetricSketch* value = sketched.find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count(), count);
  EXPECT_EQ(value->sum(), sum);  // identical fold order => identical bits
  EXPECT_EQ(value->min(), lo);
  EXPECT_EQ(value->max(), hi);
  EXPECT_EQ(value->mean(), sum / static_cast<double>(count));

  // P² is an estimator, not exact — but on 100 spread-out samples the
  // median estimate must land inside the sample range and near the true
  // median (P² error on smooth data is small).
  std::vector<double> sorted{outcomes};
  std::sort(sorted.begin(), sorted.end());
  const double true_median = (sorted[49] + sorted[50]) / 2.0;
  const double spread = sorted.back() - sorted.front();
  EXPECT_GE(value->p50(), sorted.front());
  EXPECT_LE(value->p50(), sorted.back());
  EXPECT_NEAR(value->p50(), true_median, spread * 0.15);
  EXPECT_GE(value->p99(), value->p50());

  // The sparse metric saw exactly the cells whose extractor engaged.
  const MetricSketch* sparse = sketched.find("sparse");
  ASSERT_NE(sparse, nullptr);
  std::uint64_t sparse_expected = 0;
  for (const auto& spec : specs) {
    if (spec.id % 3 == 0) ++sparse_expected;
  }
  EXPECT_EQ(sparse->count(), sparse_expected);

  EXPECT_EQ(sketched.find("missing"), nullptr);
}

TEST(SketchSinkTest, P2QuantileTracksExactQuantilesOnRamp) {
  // 1..10'000 in shuffled-ish (splitmix) order: exact quantiles are known.
  MetricSketch sketch;
  for (int i = 0; i < 10'000; ++i) {
    sketch.add(cell_value(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(sketch.count(), 10'000u);
  // Values are ~uniform on [0, 1000): p50 ~ 500, p95 ~ 950, p99 ~ 990.
  EXPECT_NEAR(sketch.p50(), 500.0, 25.0);
  EXPECT_NEAR(sketch.p95(), 950.0, 25.0);
  EXPECT_NEAR(sketch.p99(), 990.0, 25.0);
  EXPECT_LT(sketch.min(), 10.0);
  EXPECT_GT(sketch.max(), 990.0);
}

TEST(SketchSinkTest, SmallCountsUseWarmupBuffer) {
  MetricSketch sketch;
  EXPECT_TRUE(std::isnan(sketch.p50()));
  sketch.add(3.0);
  EXPECT_EQ(sketch.p50(), 3.0);
  sketch.add(1.0);
  sketch.add(2.0);
  // Nearest-rank on {1, 2, 3}: median is 2.
  EXPECT_EQ(sketch.p50(), 2.0);
  EXPECT_EQ(sketch.min(), 1.0);
  EXPECT_EQ(sketch.max(), 3.0);
}

}  // namespace
}  // namespace lazyeye::campaign
