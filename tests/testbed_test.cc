// Local testbed framework tests: CAD sweeps, RD cases, address selection,
// Table-2 feature detection — the paper's client findings reproduced through
// the black-box measurement pipeline.
#include <gtest/gtest.h>

#include "clients/profiles.h"
#include "testbed/features.h"
#include "testbed/testbed.h"

namespace lazyeye::testbed {
namespace {

using clients::ClientProfile;
using simnet::Family;

TEST(SweepSpecTest, ValueGeneration) {
  const auto values = SweepSpec{ms(0), ms(20), ms(5)}.values();
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values.front(), ms(0));
  EXPECT_EQ(values.back(), ms(20));
  EXPECT_EQ((SweepSpec{ms(7), ms(7), ms(0)}.values().size()), 1u);
}

TEST(SweepSpecTest, NonPositiveStepCollapsesToSinglePoint) {
  // A zero or negative step must not loop forever.
  EXPECT_EQ((SweepSpec{ms(10), ms(40), ms(0)}.values()),
            (std::vector<SimTime>{ms(10)}));
  EXPECT_EQ((SweepSpec{ms(10), ms(40), ms(-5)}.values()),
            (std::vector<SimTime>{ms(10)}));
}

TEST(SweepSpecTest, InvertedRangeCollapsesToSinglePoint) {
  // to < from must not silently produce an empty sweep.
  EXPECT_EQ((SweepSpec{ms(40), ms(10), ms(5)}.values()),
            (std::vector<SimTime>{ms(40)}));
}

TEST(SweepSpecTest, PaperGrids) {
  EXPECT_EQ(SweepSpec::fine_cad().values().size(), 81u);  // 0..400 step 5
  EXPECT_GT(SweepSpec::coarse_cad().values().size(), 5u);
}

struct TestbedFixture : ::testing::Test {
  LocalTestbed testbed;
};

TEST_F(TestbedFixture, ZeroDelayEstablishesV6) {
  const auto rec = testbed.run_cad_case(
      clients::chromium_profile("Chrome", "130.0", ""), SimTime{0});
  EXPECT_TRUE(rec.fetch_ok);
  EXPECT_EQ(rec.established_family, Family::kIpv6);
  EXPECT_TRUE(rec.aaaa_query_first);
}

TEST_F(TestbedFixture, ChromiumCadIs300ms) {
  // Below the CAD: IPv6 wins. Above: IPv4, and the capture shows 300 ms.
  const auto below = testbed.run_cad_case(
      clients::chromium_profile("Chrome", "130.0", ""), ms(250));
  EXPECT_EQ(below.established_family, Family::kIpv6);

  const auto above = testbed.run_cad_case(
      clients::chromium_profile("Chrome", "130.0", ""), ms(350));
  EXPECT_EQ(above.established_family, Family::kIpv4);
  ASSERT_TRUE(above.observed_cad);
  EXPECT_EQ(*above.observed_cad, ms(300));
}

TEST_F(TestbedFixture, CurlCadIs200ms) {
  const auto rec = testbed.run_cad_case(clients::curl_profile(), ms(350));
  EXPECT_EQ(rec.established_family, Family::kIpv4);
  ASSERT_TRUE(rec.observed_cad);
  EXPECT_EQ(*rec.observed_cad, ms(200));
}

TEST_F(TestbedFixture, FirefoxCadIs250ms) {
  // Use repetition majority: Firefox has occasional outliers.
  std::vector<SimTime> cads;
  for (int rep = 0; rep < 5; ++rep) {
    const auto rec = testbed.run_cad_case(
        clients::firefox_profile("132.0", "10-2024"), ms(400), rep);
    if (rec.observed_cad) cads.push_back(*rec.observed_cad);
  }
  ASSERT_FALSE(cads.empty());
  int at_250 = 0;
  for (const auto cad : cads) {
    if (cad == ms(250)) ++at_250;
    EXPECT_GE(cad, ms(250));  // outliers only wait longer (§5.1)
  }
  EXPECT_GT(at_250, 0);
}

TEST_F(TestbedFixture, SafariLabCadIsTwoSeconds) {
  const auto below = testbed.run_cad_case(clients::safari_profile("17.6"),
                                          ms(1800));
  EXPECT_EQ(below.established_family, Family::kIpv6);
  const auto above = testbed.run_cad_case(clients::safari_profile("17.6"),
                                          ms(2300));
  EXPECT_EQ(above.established_family, Family::kIpv4);
  ASSERT_TRUE(above.observed_cad);
  EXPECT_EQ(*above.observed_cad, sec(2));
}

TEST_F(TestbedFixture, WgetNeverFallsBack) {
  // Figure 2: wget stays on IPv6 for any delay (the SYN-ACK is merely
  // late); with a *blackholed* IPv6 it fails without trying IPv4.
  const auto delayed = testbed.run_cad_case(clients::wget_profile(), ms(400));
  EXPECT_EQ(delayed.established_family, Family::kIpv6);

  const auto sel = testbed.run_address_selection_case(clients::wget_profile(), 10);
  EXPECT_FALSE(sel.fetch_ok);
  EXPECT_EQ(sel.v4_addresses_used, 0);
  EXPECT_EQ(sel.v6_addresses_used, 1);
}

TEST_F(TestbedFixture, RdCaseSafariUsesFiftyMs) {
  const auto rec = testbed.run_rd_case(clients::safari_profile("17.6"),
                                       dns::RrType::kAaaa, ms(600));
  EXPECT_EQ(rec.established_family, Family::kIpv4);
  ASSERT_TRUE(rec.observed_rd);
  EXPECT_EQ(*rec.observed_rd, ms(50));
}

TEST_F(TestbedFixture, RdCaseChromiumWaitsForResolverTimeout) {
  // AAAA delayed by 600 ms (below the 5 s stub timeout): Chromium waits for
  // the AAAA answer and still connects via IPv6 — no RD.
  const auto rec = testbed.run_rd_case(
      clients::chromium_profile("Chrome", "130.0", ""), dns::RrType::kAaaa,
      ms(600));
  EXPECT_EQ(rec.established_family, Family::kIpv6);
  EXPECT_FALSE(rec.observed_rd);
  EXPECT_GE(rec.completion_time, ms(600));
}

TEST_F(TestbedFixture, SlowABlocksV6OnChromium) {
  // §5.2 headline: the A record is slow, AAAA instant — Chromium delays the
  // IPv6 connection until the A answer arrives.
  const auto rec = testbed.run_rd_case(
      clients::chromium_profile("Chrome", "130.0", ""), dns::RrType::kA,
      ms(800));
  EXPECT_EQ(rec.established_family, Family::kIpv6);
  ASSERT_TRUE(rec.a_wait_gap);
  EXPECT_LE(*rec.a_wait_gap, ms(1));
  EXPECT_GE(rec.completion_time, ms(800));
}

TEST_F(TestbedFixture, SlowABeyondResolverTimeoutFailsChromium) {
  // §5.2: "Chrome and Firefox completely failing connections in case of
  // high delays with some resolver configurations."
  TestbedOptions options;
  options.dns_timeout_override = sec(1);
  LocalTestbed strict{options};
  const auto rec = strict.run_rd_case(
      clients::chromium_profile("Chrome", "130.0", ""), dns::RrType::kA,
      sec(3));
  EXPECT_FALSE(rec.fetch_ok);
  EXPECT_FALSE(rec.established_family);
}

TEST_F(TestbedFixture, Hev3FlagFixesSlowAFailure) {
  // The Chromium HEv3 feature flag adds RD and removes the failure mode.
  TestbedOptions options;
  options.dns_timeout_override = sec(1);
  LocalTestbed strict{options};
  const auto rec = strict.run_rd_case(
      clients::chromium_profile("Chrome", "130.0", "", /*hev3_flag=*/true),
      dns::RrType::kA, sec(3));
  EXPECT_TRUE(rec.fetch_ok);
  EXPECT_EQ(rec.established_family, Family::kIpv6);
}

TEST_F(TestbedFixture, SafariNotAffectedBySlowA) {
  const auto rec = testbed.run_rd_case(clients::safari_profile("17.6"),
                                       dns::RrType::kA, ms(800));
  EXPECT_EQ(rec.established_family, Family::kIpv6);
  // Connected as soon as the AAAA answer arrived, not after the A answer.
  EXPECT_LT(rec.completion_time, ms(100));
}

TEST_F(TestbedFixture, AddressSelectionCounts) {
  const auto chrome = testbed.run_address_selection_case(
      clients::chromium_profile("Chrome", "130.0", ""), 10);
  EXPECT_EQ(chrome.v6_addresses_used, 1);
  EXPECT_EQ(chrome.v4_addresses_used, 1);

  const auto safari =
      testbed.run_address_selection_case(clients::safari_profile("17.6"), 10);
  EXPECT_EQ(safari.v6_addresses_used, 10);
  EXPECT_EQ(safari.v4_addresses_used, 10);
  // Interlacing visible: v6 again after the first v4.
  ASSERT_GE(safari.attempt_sequence.size(), 4u);
  EXPECT_EQ(safari.attempt_sequence[0], Family::kIpv6);
  EXPECT_EQ(safari.attempt_sequence[1], Family::kIpv6);
  EXPECT_EQ(safari.attempt_sequence[2], Family::kIpv4);
  EXPECT_EQ(safari.attempt_sequence[3], Family::kIpv6);
}

TEST_F(TestbedFixture, SweepFindsTransitionNearCad) {
  // Sweep curl (CAD 200 ms) from 150 to 250 ms in 25 ms steps: the
  // established family flips between 200 and 225 ms.
  const auto records = testbed.sweep_cad(
      clients::curl_profile(), SweepSpec{ms(150), ms(250), ms(25)});
  ASSERT_EQ(records.size(), 5u);
  for (const auto& rec : records) {
    const bool expect_v6 = rec.configured_delay <= ms(200);
    EXPECT_EQ(rec.established_family,
              expect_v6 ? Family::kIpv6 : Family::kIpv4)
        << "delay " << format_duration(rec.configured_delay);
  }
}

// ------------------------------------------------------ feature matrix ----

struct FeatureFixture : ::testing::Test {
  LocalTestbed testbed;
};

TEST_F(FeatureFixture, ChromeRow) {
  const auto row = detect_features(
      clients::chromium_profile("Chrome", "130.0", "10-2024"), testbed);
  EXPECT_EQ(row.prefers_ipv6, FeatureState::kObserved);
  EXPECT_EQ(row.cad_impl, FeatureState::kObserved);
  EXPECT_EQ(row.aaaa_first, FeatureState::kObserved);
  EXPECT_EQ(row.rd_impl, FeatureState::kNotObserved);
  EXPECT_EQ(row.ipv6_addrs_used, 1);
  EXPECT_EQ(row.ipv4_addrs_used, 1);
  EXPECT_EQ(row.addr_selection, FeatureState::kNotObserved);
  ASSERT_TRUE(row.measured_cad);
  EXPECT_EQ(*row.measured_cad, ms(300));
}

TEST_F(FeatureFixture, SafariRowSupportsEverything) {
  const auto row = detect_features(clients::safari_profile("17.6"), testbed);
  EXPECT_EQ(row.prefers_ipv6, FeatureState::kObserved);
  EXPECT_EQ(row.cad_impl, FeatureState::kObserved);
  EXPECT_EQ(row.aaaa_first, FeatureState::kObserved);
  EXPECT_EQ(row.rd_impl, FeatureState::kObserved);
  EXPECT_EQ(row.ipv6_addrs_used, 10);
  EXPECT_EQ(row.ipv4_addrs_used, 10);
  EXPECT_EQ(row.addr_selection, FeatureState::kObserved);
}

TEST_F(FeatureFixture, WgetRowHasNoHappyEyeballs) {
  const auto row = detect_features(clients::wget_profile(), testbed);
  EXPECT_EQ(row.prefers_ipv6, FeatureState::kObserved);
  EXPECT_EQ(row.cad_impl, FeatureState::kNotObserved);
  EXPECT_EQ(row.rd_impl, FeatureState::kNotObserved);
  EXPECT_EQ(row.ipv4_addrs_used, 0);
  EXPECT_EQ(row.ipv6_addrs_used, 1);
}

TEST_F(FeatureFixture, CurlRow) {
  const auto row = detect_features(clients::curl_profile(), testbed);
  EXPECT_EQ(row.cad_impl, FeatureState::kObserved);
  EXPECT_EQ(row.rd_impl, FeatureState::kNotObserved);
  EXPECT_EQ(row.ipv6_addrs_used, 1);
  EXPECT_EQ(row.ipv4_addrs_used, 1);
  ASSERT_TRUE(row.measured_cad);
  EXPECT_EQ(*row.measured_cad, ms(200));
}

}  // namespace
}  // namespace lazyeye::testbed
