// TCP and QUIC handshake model tests: establishment, RTO/retransmission,
// RST/refusal, blackhole timeouts, aborts, data transfer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "simnet/network.h"
#include "transport/quic.h"
#include "transport/tuple_index.h"
#include "transport/tcp.h"

namespace lazyeye::transport {
namespace {

using simnet::IpAddress;

struct TransportFixture : ::testing::Test {
  TransportFixture()
      : net{3}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.1"));
    client_host.add_address(IpAddress::must_parse("2001:db8::1"));
    server_host.add_address(IpAddress::must_parse("10.0.0.2"));
    server_host.add_address(IpAddress::must_parse("2001:db8::2"));
    client = std::make_unique<TcpStack>(client_host);
    server = std::make_unique<TcpStack>(server_host);
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;
};

TEST_F(TransportFixture, HandshakeCompletes) {
  server->listen(443);
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, TransportProtocol::kTcp);
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
  EXPECT_EQ(result.remote.port, 443);
  EXPECT_NE(result.connection_id, 0u);
}

TEST_F(TransportFixture, Ipv6Handshake) {
  server->listen(443);
  ConnectResult result;
  client->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), simnet::Family::kIpv6);
}

TEST_F(TransportFixture, AcceptHandlerFires) {
  std::uint64_t accepted_conn = 0;
  simnet::Endpoint accepted_peer;
  server->listen(443, [&](std::uint64_t conn_id, const simnet::Endpoint& peer) {
    accepted_conn = conn_id;
    accepted_peer = peer;
  });
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [](const ConnectResult&) {});
  net.loop().run();
  EXPECT_NE(accepted_conn, 0u);
  EXPECT_EQ(accepted_peer.addr.to_string(), "10.0.0.1");
}

TEST_F(TransportFixture, RefusedOnClosedPort) {
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 9999}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "refused");
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
}

TEST_F(TransportFixture, SilentDropWhenRstDisabled) {
  server->set_rst_on_closed_port(false);
  TcpOptions options;
  options.syn_rto = ms(500);
  options.syn_retries = 1;
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 9999}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  // Initial SYN at 0 (RTO 500 ms), retransmit at 500 ms (RTO 1 s) -> 1.5 s.
  EXPECT_EQ(result.handshake_time(), ms(1500));
}

TEST_F(TransportFixture, BlackholedAddressTimesOut) {
  TcpOptions options;
  options.syn_rto = sec(1);
  options.syn_retries = 2;
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.99"), 443}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  // 1 s + 2 s + 4 s with two retransmissions.
  EXPECT_EQ(result.handshake_time(), sec(7));
}

TEST_F(TransportFixture, SynLossRecoveredByRetransmission) {
  server->listen(443);
  // Drop the first SYN: 100% loss until we clear the rule.
  simnet::PacketFilter syn_filter;
  syn_filter.proto = simnet::Protocol::kTcp;
  syn_filter.dst_port = 443;
  net.qdisc().add_rule(syn_filter, simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0});

  ConnectResult result;
  TcpOptions options;
  options.syn_rto = sec(1);
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run_until(ms(500));
  net.qdisc().clear();
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  // Established via the 1 s retransmission.
  EXPECT_EQ(result.handshake_time(), sec(1) + 2 * net.base_delay());
}

TEST_F(TransportFixture, AbortReportsCancelled) {
  server->listen(443);
  ConnectResult result;
  const auto id = client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                                  [&](const ConnectResult& r) { result = r; });
  client->abort(id);
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cancelled");
}

TEST_F(TransportFixture, NoLocalAddressFailsImmediately) {
  simnet::Host& v4only = net.add_host("v4only");
  v4only.add_address(IpAddress::must_parse("10.0.0.7"));
  TcpStack stack{v4only};
  ConnectResult result;
  const auto id = stack.connect({IpAddress::must_parse("2001:db8::2"), 443},
                                {}, [&](const ConnectResult& r) { result = r; });
  EXPECT_EQ(id, 0u);
  EXPECT_FALSE(result.ok);
}

TEST_F(TransportFixture, DataRoundTrip) {
  std::uint64_t server_conn = 0;
  server->listen(80, [&](std::uint64_t conn_id, const simnet::Endpoint&) {
    server_conn = conn_id;
  });
  std::string server_received;
  server->set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t> data) {
        server_received.assign(data.begin(), data.end());
        server->send_data(conn_id, {'p', 'o', 'n', 'g'});
      });
  std::string client_received;
  client->set_data_handler(
      [&](std::uint64_t, std::span<const std::uint8_t> data) {
        client_received.assign(data.begin(), data.end());
      });

  client->connect({IpAddress::must_parse("10.0.0.2"), 80}, {},
                  [&](const ConnectResult& r) {
                    ASSERT_TRUE(r.ok);
                    client->send_data(r.connection_id, {'p', 'i', 'n', 'g'});
                  });
  net.loop().run();
  EXPECT_EQ(server_received, "ping");
  EXPECT_EQ(client_received, "pong");
}

TEST_F(TransportFixture, CloseTearsDownBothSides) {
  server->listen(80);
  std::uint64_t conn_id = 0;
  client->connect({IpAddress::must_parse("10.0.0.2"), 80}, {},
                  [&](const ConnectResult& r) { conn_id = r.connection_id; });
  net.loop().run();
  EXPECT_EQ(client->established_count(), 1u);
  EXPECT_EQ(server->established_count(), 1u);
  client->close(conn_id);
  net.loop().run();
  EXPECT_EQ(client->established_count(), 0u);
  EXPECT_EQ(server->established_count(), 0u);
}

// ----------------------------------------------------------------- QUIC ----

struct QuicFixture : TransportFixture {
  QuicFixture() {
    qclient = std::make_unique<QuicStack>(client_host);
    qserver = std::make_unique<QuicStack>(server_host);
  }
  std::unique_ptr<QuicStack> qclient;
  std::unique_ptr<QuicStack> qserver;
};

TEST_F(QuicFixture, HandshakeCompletesInOneRtt) {
  qserver->listen(443);
  ConnectResult result;
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                   [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, TransportProtocol::kQuic);
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
}

TEST_F(QuicFixture, NoServiceTimesOut) {
  QuicOptions options;
  options.initial_rto = ms(300);
  options.max_retransmits = 1;
  ConnectResult result;
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, options,
                   [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  EXPECT_EQ(result.handshake_time(), ms(300) + ms(600));
}

TEST_F(QuicFixture, DataRoundTrip) {
  qserver->listen(443);
  qserver->set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        qserver->send_data(conn_id, {'o', 'k'});
      });
  std::string client_received;
  qclient->set_data_handler(
      [&](std::uint64_t, std::span<const std::uint8_t> data) {
        client_received.assign(data.begin(), data.end());
      });
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                   [&](const ConnectResult& r) {
                     ASSERT_TRUE(r.ok);
                     qclient->send_data(r.connection_id, {'h', 'i'});
                   });
  net.loop().run();
  EXPECT_EQ(client_received, "ok");
}

TEST_F(QuicFixture, AbortReportsCancelled) {
  qserver->listen(443);
  ConnectResult result;
  const auto id = qclient->connect({IpAddress::must_parse("10.0.0.2"), 443},
                                   {}, [&](const ConnectResult& r) { result = r; });
  qclient->abort(id);
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cancelled");
}

TEST_F(QuicFixture, QuicPayloadDetection) {
  EXPECT_TRUE(is_quic_payload(std::vector<std::uint8_t>{'I'}));
  EXPECT_TRUE(is_quic_payload(std::vector<std::uint8_t>{'H', 1, 2}));
  EXPECT_FALSE(is_quic_payload(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(is_quic_payload(std::vector<std::uint8_t>{0x42}));
}

TEST_F(TransportFixture, TcpAndQuicCoexistOnSameHost) {
  // TCP listener and QUIC listener on the same port number do not clash
  // (different protocols).
  QuicStack qserver{server_host};
  qserver.listen(443);
  server->listen(443);

  QuicStack qclient{client_host};
  ConnectResult tcp_result;
  ConnectResult quic_result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { tcp_result = r; });
  qclient.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { quic_result = r; });
  net.loop().run();
  EXPECT_TRUE(tcp_result.ok);
  EXPECT_TRUE(quic_result.ok);
}

// ---------------------------------------------------------- tuple index ----
// The open-addressing four-tuple index replaced the per-packet linear scan;
// these tests pin its semantics to the scan it replaced: lowest-id wins on
// duplicate tuples, erase removes exactly one connection, and slots freed by
// a close are immediately reusable.

struct FakeConn {
  FourTuple tuple;
  std::uint64_t id = 0;
};

FourTuple tuple_for(std::uint16_t local_port, std::uint16_t remote_port) {
  FourTuple t;
  t.local = {IpAddress::must_parse("10.0.0.1"), local_port};
  t.remote = {IpAddress::must_parse("10.0.0.2"), remote_port};
  return t;
}

TEST(TupleIndexTest, FindAfterInsertAndErase) {
  TupleIndex<FakeConn> index;
  FakeConn a{tuple_for(1000, 443), 1};
  FakeConn b{tuple_for(1001, 443), 2};
  EXPECT_EQ(index.find(a.tuple), nullptr);

  index.insert(&a);
  index.insert(&b);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.find(a.tuple), &a);
  EXPECT_EQ(index.find(b.tuple), &b);

  index.erase(&a);
  EXPECT_EQ(index.find(a.tuple), nullptr);
  EXPECT_EQ(index.find(b.tuple), &b);
  index.erase(&a);  // double-erase is a no-op
  EXPECT_EQ(index.size(), 1u);
}

TEST(TupleIndexTest, DuplicateTuplesResolveToLowestId) {
  // The old id-ordered linear scan returned the lowest-id match; duplicate
  // tuples must keep resolving identically, whichever insertion order.
  TupleIndex<FakeConn> index;
  FakeConn high{tuple_for(1000, 443), 7};
  FakeConn low{tuple_for(1000, 443), 3};
  index.insert(&high);
  index.insert(&low);
  EXPECT_EQ(index.find(high.tuple), &low);

  index.erase(&low);
  EXPECT_EQ(index.find(high.tuple), &high);
}

TEST(TupleIndexTest, CollidingHashesProbeCorrectly) {
  // Many tuples land in a 16-slot initial table, forcing probe chains and
  // backward-shift deletions through shared clusters. Verify every survivor
  // stays findable after each erase — the classic tombstone-free pitfall.
  TupleIndex<FakeConn> index;
  std::vector<FakeConn> conns;
  conns.reserve(64);
  for (std::uint16_t i = 0; i < 64; ++i) {
    conns.push_back(FakeConn{tuple_for(2000 + i, 443), i + 1u});
  }
  for (auto& c : conns) index.insert(&c);

  // Erase every third connection and re-verify the rest each time.
  for (std::size_t victim = 0; victim < conns.size(); victim += 3) {
    index.erase(&conns[victim]);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (i % 3 == 0 && i <= victim) {
        EXPECT_EQ(index.find(conns[i].tuple), nullptr);
      } else {
        EXPECT_EQ(index.find(conns[i].tuple), &conns[i]) << "conn " << i;
      }
    }
  }
}

TEST(TupleIndexTest, ManyConnectionStress) {
  // Grow through several rehashes, then churn: close half, reopen with new
  // ids on the same tuples (port reuse after close), and confirm lookups.
  TupleIndex<FakeConn> index;
  constexpr std::size_t kConns = 1024;
  std::vector<FakeConn> conns;
  conns.reserve(kConns * 2);
  for (std::size_t i = 0; i < kConns; ++i) {
    conns.push_back(FakeConn{
        tuple_for(static_cast<std::uint16_t>(1024 + i),
                  static_cast<std::uint16_t>(443 + (i % 7))),
        i + 1});
    index.insert(&conns.back());
  }
  EXPECT_EQ(index.size(), kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    ASSERT_EQ(index.find(conns[i].tuple), &conns[i]);
  }

  // Close the even half...
  for (std::size_t i = 0; i < kConns; i += 2) index.erase(&conns[i]);
  EXPECT_EQ(index.size(), kConns / 2);

  // ...and reconnect on the same tuples with fresh (higher) ids.
  for (std::size_t i = 0; i < kConns; i += 2) {
    conns.push_back(FakeConn{conns[i].tuple, kConns + i + 1});
    index.insert(&conns.back());
  }
  EXPECT_EQ(index.size(), kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    FakeConn* found = index.find(conns[i].tuple);
    ASSERT_NE(found, nullptr) << "conn " << i;
    if (i % 2 == 0) {
      EXPECT_EQ(found->id, kConns + i + 1) << "reused tuple " << i;
    } else {
      EXPECT_EQ(found, &conns[i]);
    }
  }
}

TEST_F(TransportFixture, ManyParallelConnectionsKeepDistinctTuples) {
  // End-to-end index coverage: dozens of parallel attempts (the address-
  // selection grid shape) must each complete a distinct handshake with data
  // flowing to the right connection — any index mixup would cross-deliver.
  server->listen(443);
  constexpr int kAttempts = 40;
  int completed = 0;
  std::vector<std::uint64_t> conn_ids;
  for (int i = 0; i < kAttempts; ++i) {
    client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                    [&](const ConnectResult& r) {
                      ASSERT_TRUE(r.ok) << r.error;
                      conn_ids.push_back(r.connection_id);
                      ++completed;
                    });
  }
  net.loop().run();
  EXPECT_EQ(completed, kAttempts);
  std::set<std::uint64_t> distinct{conn_ids.begin(), conn_ids.end()};
  EXPECT_EQ(distinct.size(), conn_ids.size());
}

}  // namespace
}  // namespace lazyeye::transport
