// TCP and QUIC handshake model tests: establishment, RTO/retransmission,
// RST/refusal, blackhole timeouts, aborts, data transfer.
#include <gtest/gtest.h>

#include "simnet/network.h"
#include "transport/quic.h"
#include "transport/tcp.h"

namespace lazyeye::transport {
namespace {

using simnet::IpAddress;

struct TransportFixture : ::testing::Test {
  TransportFixture()
      : net{3}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.1"));
    client_host.add_address(IpAddress::must_parse("2001:db8::1"));
    server_host.add_address(IpAddress::must_parse("10.0.0.2"));
    server_host.add_address(IpAddress::must_parse("2001:db8::2"));
    client = std::make_unique<TcpStack>(client_host);
    server = std::make_unique<TcpStack>(server_host);
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;
};

TEST_F(TransportFixture, HandshakeCompletes) {
  server->listen(443);
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, TransportProtocol::kTcp);
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
  EXPECT_EQ(result.remote.port, 443);
  EXPECT_NE(result.connection_id, 0u);
}

TEST_F(TransportFixture, Ipv6Handshake) {
  server->listen(443);
  ConnectResult result;
  client->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.family(), simnet::Family::kIpv6);
}

TEST_F(TransportFixture, AcceptHandlerFires) {
  std::uint64_t accepted_conn = 0;
  simnet::Endpoint accepted_peer;
  server->listen(443, [&](std::uint64_t conn_id, const simnet::Endpoint& peer) {
    accepted_conn = conn_id;
    accepted_peer = peer;
  });
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [](const ConnectResult&) {});
  net.loop().run();
  EXPECT_NE(accepted_conn, 0u);
  EXPECT_EQ(accepted_peer.addr.to_string(), "10.0.0.1");
}

TEST_F(TransportFixture, RefusedOnClosedPort) {
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 9999}, {},
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "refused");
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
}

TEST_F(TransportFixture, SilentDropWhenRstDisabled) {
  server->set_rst_on_closed_port(false);
  TcpOptions options;
  options.syn_rto = ms(500);
  options.syn_retries = 1;
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 9999}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  // Initial SYN at 0 (RTO 500 ms), retransmit at 500 ms (RTO 1 s) -> 1.5 s.
  EXPECT_EQ(result.handshake_time(), ms(1500));
}

TEST_F(TransportFixture, BlackholedAddressTimesOut) {
  TcpOptions options;
  options.syn_rto = sec(1);
  options.syn_retries = 2;
  ConnectResult result;
  client->connect({IpAddress::must_parse("10.0.0.99"), 443}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  // 1 s + 2 s + 4 s with two retransmissions.
  EXPECT_EQ(result.handshake_time(), sec(7));
}

TEST_F(TransportFixture, SynLossRecoveredByRetransmission) {
  server->listen(443);
  // Drop the first SYN: 100% loss until we clear the rule.
  simnet::PacketFilter syn_filter;
  syn_filter.proto = simnet::Protocol::kTcp;
  syn_filter.dst_port = 443;
  net.qdisc().add_rule(syn_filter, simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0});

  ConnectResult result;
  TcpOptions options;
  options.syn_rto = sec(1);
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, options,
                  [&](const ConnectResult& r) { result = r; });
  net.loop().run_until(ms(500));
  net.qdisc().clear();
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  // Established via the 1 s retransmission.
  EXPECT_EQ(result.handshake_time(), sec(1) + 2 * net.base_delay());
}

TEST_F(TransportFixture, AbortReportsCancelled) {
  server->listen(443);
  ConnectResult result;
  const auto id = client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                                  [&](const ConnectResult& r) { result = r; });
  client->abort(id);
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cancelled");
}

TEST_F(TransportFixture, NoLocalAddressFailsImmediately) {
  simnet::Host& v4only = net.add_host("v4only");
  v4only.add_address(IpAddress::must_parse("10.0.0.7"));
  TcpStack stack{v4only};
  ConnectResult result;
  const auto id = stack.connect({IpAddress::must_parse("2001:db8::2"), 443},
                                {}, [&](const ConnectResult& r) { result = r; });
  EXPECT_EQ(id, 0u);
  EXPECT_FALSE(result.ok);
}

TEST_F(TransportFixture, DataRoundTrip) {
  std::uint64_t server_conn = 0;
  server->listen(80, [&](std::uint64_t conn_id, const simnet::Endpoint&) {
    server_conn = conn_id;
  });
  std::string server_received;
  server->set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t> data) {
        server_received.assign(data.begin(), data.end());
        server->send_data(conn_id, {'p', 'o', 'n', 'g'});
      });
  std::string client_received;
  client->set_data_handler(
      [&](std::uint64_t, std::span<const std::uint8_t> data) {
        client_received.assign(data.begin(), data.end());
      });

  client->connect({IpAddress::must_parse("10.0.0.2"), 80}, {},
                  [&](const ConnectResult& r) {
                    ASSERT_TRUE(r.ok);
                    client->send_data(r.connection_id, {'p', 'i', 'n', 'g'});
                  });
  net.loop().run();
  EXPECT_EQ(server_received, "ping");
  EXPECT_EQ(client_received, "pong");
}

TEST_F(TransportFixture, CloseTearsDownBothSides) {
  server->listen(80);
  std::uint64_t conn_id = 0;
  client->connect({IpAddress::must_parse("10.0.0.2"), 80}, {},
                  [&](const ConnectResult& r) { conn_id = r.connection_id; });
  net.loop().run();
  EXPECT_EQ(client->established_count(), 1u);
  EXPECT_EQ(server->established_count(), 1u);
  client->close(conn_id);
  net.loop().run();
  EXPECT_EQ(client->established_count(), 0u);
  EXPECT_EQ(server->established_count(), 0u);
}

// ----------------------------------------------------------------- QUIC ----

struct QuicFixture : TransportFixture {
  QuicFixture() {
    qclient = std::make_unique<QuicStack>(client_host);
    qserver = std::make_unique<QuicStack>(server_host);
  }
  std::unique_ptr<QuicStack> qclient;
  std::unique_ptr<QuicStack> qserver;
};

TEST_F(QuicFixture, HandshakeCompletesInOneRtt) {
  qserver->listen(443);
  ConnectResult result;
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                   [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.proto, TransportProtocol::kQuic);
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
}

TEST_F(QuicFixture, NoServiceTimesOut) {
  QuicOptions options;
  options.initial_rto = ms(300);
  options.max_retransmits = 1;
  ConnectResult result;
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, options,
                   [&](const ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "timeout");
  EXPECT_EQ(result.handshake_time(), ms(300) + ms(600));
}

TEST_F(QuicFixture, DataRoundTrip) {
  qserver->listen(443);
  qserver->set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        qserver->send_data(conn_id, {'o', 'k'});
      });
  std::string client_received;
  qclient->set_data_handler(
      [&](std::uint64_t, std::span<const std::uint8_t> data) {
        client_received.assign(data.begin(), data.end());
      });
  qclient->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                   [&](const ConnectResult& r) {
                     ASSERT_TRUE(r.ok);
                     qclient->send_data(r.connection_id, {'h', 'i'});
                   });
  net.loop().run();
  EXPECT_EQ(client_received, "ok");
}

TEST_F(QuicFixture, AbortReportsCancelled) {
  qserver->listen(443);
  ConnectResult result;
  const auto id = qclient->connect({IpAddress::must_parse("10.0.0.2"), 443},
                                   {}, [&](const ConnectResult& r) { result = r; });
  qclient->abort(id);
  net.loop().run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "cancelled");
}

TEST_F(QuicFixture, QuicPayloadDetection) {
  EXPECT_TRUE(is_quic_payload(std::vector<std::uint8_t>{'I'}));
  EXPECT_TRUE(is_quic_payload(std::vector<std::uint8_t>{'H', 1, 2}));
  EXPECT_FALSE(is_quic_payload(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(is_quic_payload(std::vector<std::uint8_t>{0x42}));
}

TEST_F(TransportFixture, TcpAndQuicCoexistOnSameHost) {
  // TCP listener and QUIC listener on the same port number do not clash
  // (different protocols).
  QuicStack qserver{server_host};
  qserver.listen(443);
  server->listen(443);

  QuicStack qclient{client_host};
  ConnectResult tcp_result;
  ConnectResult quic_result;
  client->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { tcp_result = r; });
  qclient.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                  [&](const ConnectResult& r) { quic_result = r; });
  net.loop().run();
  EXPECT_TRUE(tcp_result.ok);
  EXPECT_TRUE(quic_result.ok);
}

}  // namespace
}  // namespace lazyeye::transport
