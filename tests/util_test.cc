#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/time.h"

namespace lazyeye {
namespace {

// ---------------------------------------------------------------- time ----

TEST(TimeTest, ConstructorsAgree) {
  EXPECT_EQ(ms(1), us(1000));
  EXPECT_EQ(sec(1), ms(1000));
  EXPECT_EQ(minutes(1), sec(60));
  EXPECT_EQ(ms_f(0.5), us(500));
  EXPECT_EQ(ms_f(250.0), ms(250));
}

TEST(TimeTest, ToMsRoundTrips) {
  EXPECT_DOUBLE_EQ(to_ms(ms(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_ms(us(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(ms(1750)), 1.75);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(ms(0)), "0ms");
  EXPECT_EQ(format_duration(ms(250)), "250ms");
  EXPECT_EQ(format_duration(ms(1750)), "1750ms");
  EXPECT_EQ(format_duration(sec(2)), "2s");
  EXPECT_EQ(format_duration(us(50)), "50us");
  EXPECT_EQ(format_duration(ns(7)), "7ns");
  EXPECT_EQ(format_duration(-ms(5)), "-5ms");
  EXPECT_EQ(format_duration(sec(12)), "12s");
}

// ----------------------------------------------------------------- rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{99};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng{3};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng{11};
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, RangeInclusive) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DurationRange) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const SimTime t = rng.next_duration(ms(10), ms(20));
    EXPECT_GE(t, ms(10));
    EXPECT_LE(t, ms(20));
  }
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent{123};
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2{123};
  parent2.fork();
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

// --------------------------------------------------------------- bytes ----

TEST(BytesTest, WriterBigEndian) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 7u);
  EXPECT_EQ(d[0], 0x01);
  EXPECT_EQ(d[1], 0x02);
  EXPECT_EQ(d[2], 0x03);
  EXPECT_EQ(d[3], 0x04);
  EXPECT_EQ(d[6], 0x07);
}

TEST(BytesTest, ReaderRoundTrip) {
  ByteWriter w;
  w.u16(0xbeef);
  w.u32(0xdeadc0de);
  w.bytes(std::string_view{"abc"});
  const auto buf = w.take();

  ByteReader r{buf};
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadc0deu);
  EXPECT_EQ(r.str(3), "abc");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, ReaderOutOfBoundsSticks) {
  const std::vector<std::uint8_t> buf{0x01};
  ByteReader r{buf};
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0);  // out of bounds
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still failing
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, ReaderSeekForCompressionPointers) {
  const std::vector<std::uint8_t> buf{0xaa, 0xbb, 0xcc};
  ByteReader r{buf};
  r.skip(2);
  r.seek(1);
  EXPECT_EQ(r.u8(), 0xbb);
  r.seek(17);
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(0x42);
  w.patch_u16(0, 0x1234);
  EXPECT_EQ(w.data()[0], 0x12);
  EXPECT_EQ(w.data()[1], 0x34);
  EXPECT_EQ(w.data()[2], 0x42);
}

TEST(BytesTest, ToHex) {
  const std::vector<std::uint8_t> buf{0x0a, 0xff, 0x00};
  EXPECT_EQ(to_hex(buf), "0a ff 00");
}

// -------------------------------------------------------------- result ----

TEST(ResultTest, SuccessAndFailure) {
  Result<int> ok{42};
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  const auto bad = Result<int>::failure("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, StatusDefaultOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  const auto f = Status::failure("broken");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error(), "broken");
}

// ------------------------------------------------------------- strings ----

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(".a.", '.'), (std::vector<std::string>{"", "a", ""}));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("example.com", "exam"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_TRUE(ends_with("example.com", ".com"));
  EXPECT_FALSE(ends_with("com", ".com"));
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("250"), 250u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(str_format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(str_format("%.1f %%", 43.75), "43.8 %");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
}

// --------------------------------------------------------------- table ----

TEST(TableTest, RendersAlignedColumns) {
  TextTable t{{"Name", "Value"}};
  t.set_align(1, TextTable::Align::kRight);
  t.add_row({"x", "1"});
  t.add_row({"longer", "250"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(out.find("| x      |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| longer |   250 |"), std::string::npos);
}

TEST(TableTest, SeparatorRows) {
  TextTable t{{"A"}};
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule + separator rule.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("|---", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TableTest, ShortRowsPadded) {
  TextTable t{{"A", "B"}};
  t.add_row({"only-a"});
  EXPECT_NE(t.render().find("| only-a |"), std::string::npos);
}

}  // namespace
}  // namespace lazyeye
