// Web-based testing tool tests: interval estimation, Safari dynamic CAD
// inconsistency, RD web test, iCPR egress behaviour.
#include <gtest/gtest.h>

#include "clients/profiles.h"
#include "webtool/webtool.h"

namespace lazyeye::webtool {
namespace {

using simnet::Family;

TEST(WebToolConfigTest, PaperDefaultHas18Delays) {
  const auto config = WebToolConfig::paper_default();
  EXPECT_EQ(config.delays.size(), 18u);
  EXPECT_EQ(config.delays.front(), ms(0));
  EXPECT_EQ(config.delays.back(), sec(5));
}

struct WebToolFixture : ::testing::Test {
  WebToolConfig quick_config() {
    WebToolConfig config = WebToolConfig::paper_default();
    config.repetitions = 5;
    config.seed = 9;
    return config;
  }
};

TEST_F(WebToolFixture, ChromiumIntervalBracketsTheCad) {
  WebTool tool{quick_config()};
  const auto report =
      tool.run_cad_test(clients::chromium_profile("Chrome", "130.0", ""));
  // Chromium CAD 300 ms: last IPv6 bucket 300 ms, first IPv4 bucket 350 ms
  // (the web tool can only bracket: CAD in (300, 350]).
  ASSERT_TRUE(report.interval_low);
  ASSERT_TRUE(report.interval_high);
  EXPECT_EQ(*report.interval_low, ms(300));
  EXPECT_EQ(*report.interval_high, ms(350));
  // Browsers other than Safari show at most rare inconsistencies (§5.1).
  EXPECT_LE(report.inconsistent_repetitions, 2);
}

TEST_F(WebToolFixture, CurlIntervalBracketsSmallestCad) {
  WebTool tool{quick_config()};
  const auto report = tool.run_cad_test(clients::curl_profile());
  ASSERT_TRUE(report.interval_low);
  ASSERT_TRUE(report.interval_high);
  EXPECT_EQ(*report.interval_low, ms(200));
  EXPECT_EQ(*report.interval_high, ms(250));
}

TEST_F(WebToolFixture, SafariWebCadIsDynamicAndInconsistent) {
  WebToolConfig config = quick_config();
  config.repetitions = 10;
  WebTool tool{config};
  const auto report = tool.run_cad_test(clients::safari_profile("17.6"));
  // §5.1: Safari exposed inconsistencies in 6..10 of 10 repetitions.
  EXPECT_GE(report.inconsistent_repetitions, 6);
  EXPECT_LE(report.inconsistent_repetitions, 10);
  // IPv4 appears well below the 2 s lab value and IPv6 well above 50 ms.
  bool v4_below_1s = false;
  bool v6_above_200ms = false;
  for (const auto& obs : report.per_delay) {
    if (obs.delay < sec(1) && obs.v4_used > 0) v4_below_1s = true;
    if (obs.delay > ms(200) && obs.v6_used > 0) v6_above_200ms = true;
  }
  EXPECT_TRUE(v4_below_1s);
  EXPECT_TRUE(v6_above_200ms);
}

TEST_F(WebToolFixture, UserAgentAttachedAndParsed) {
  WebTool tool{quick_config()};
  const auto report = tool.run_cad_test(
      clients::chromium_profile("Chrome", "130.0", ""), "Mac OS X", "10.15.7");
  EXPECT_EQ(report.parsed_agent.browser, "Chrome");
  EXPECT_EQ(report.parsed_agent.os_name, "Mac OS X");
  EXPECT_EQ(report.parsed_agent.os_version, "10.15.7");
}

TEST_F(WebToolFixture, RdWebTestSafariFallsBackAfterFiftyMs) {
  WebTool tool{quick_config()};
  const auto report = tool.run_rd_test(clients::safari_profile("17.6"));
  // With the AAAA answer delayed beyond the 50 ms RD, Safari uses IPv4.
  for (const auto& obs : report.per_delay) {
    if (obs.delay <= ms(25)) {
      EXPECT_GT(obs.v6_used, obs.v4_used)
          << "delay " << format_duration(obs.delay);
    }
    if (obs.delay >= ms(200)) {
      EXPECT_GT(obs.v4_used, obs.v6_used)
          << "delay " << format_duration(obs.delay);
    }
  }
}

TEST_F(WebToolFixture, RdWebTestChromiumRidesResolverTimeout) {
  WebToolConfig config = quick_config();
  config.repetitions = 3;
  WebTool tool{config};
  const auto report =
      tool.run_rd_test(clients::chromium_profile("Chrome", "130.0", ""));
  // Chromium has no RD: for AAAA delays below the 5 s resolver timeout it
  // waits and still uses IPv6.
  for (const auto& obs : report.per_delay) {
    if (obs.delay <= sec(3)) {
      EXPECT_GE(obs.v6_used, obs.v4_used)
          << "delay " << format_duration(obs.delay);
    }
  }
}

TEST_F(WebToolFixture, IcprEgressShowsOperatorCad) {
  // At the bucket equal to the CAD the race is a coin flip (the real web
  // tool has the same one-bucket accuracy), so assert the interval contains
  // the operator CAD inclusively.
  WebTool tool{quick_config()};
  const auto akamai =
      tool.run_cad_test(clients::icpr_egress_profile("Akamai"));
  ASSERT_TRUE(akamai.interval_low);
  ASSERT_TRUE(akamai.interval_high);
  EXPECT_LE(*akamai.interval_low, ms(150));   // CAD 150 ms
  EXPECT_GE(*akamai.interval_high, ms(150));
  EXPECT_LE(*akamai.interval_high - *akamai.interval_low, ms(100));

  const auto cloudflare =
      tool.run_cad_test(clients::icpr_egress_profile("Cloudflare"));
  ASSERT_TRUE(cloudflare.interval_low);
  ASSERT_TRUE(cloudflare.interval_high);
  EXPECT_LE(*cloudflare.interval_low, ms(200));  // CAD 200 ms
  EXPECT_GE(*cloudflare.interval_high, ms(200));
}

TEST_F(WebToolFixture, FailuresCountedWhenEverythingDark) {
  // A profile with no fallback against delays beyond its patience: wget
  // still succeeds on pure delay, so instead verify the failure path by
  // giving wget a 5 s bucket (beyond its SYN retry budget the connection
  // still completes since netem only delays). Use the RD A-delay test with
  // a strict resolver instead.
  WebToolConfig config = quick_config();
  config.repetitions = 2;
  WebTool tool{config};
  clients::ClientProfile chrome =
      clients::chromium_profile("Chrome", "130.0", "");
  chrome.dns_timeout = sec(1);
  const auto report = tool.run_rd_test(chrome, dns::RrType::kA);
  // Buckets with A delays well beyond the 1 s resolver timeout (including
  // its one retransmission) fail completely (§5.2) — IPv6 was fine the
  // whole time.
  int failing_buckets = 0;
  for (const auto& obs : report.per_delay) {
    if (obs.delay > sec(1) && obs.failures == 2) ++failing_buckets;
  }
  EXPECT_GE(failing_buckets, 3);
}

}  // namespace
}  // namespace lazyeye::webtool
