// lazyeye_hunt: seeded, crash-safe, coverage-guided hunt for compound fault
// schedules that break (or split) Happy Eyeballs client behaviour.
//
// Subcommands:
//
//   hunt --journal J [--corpus C]     run (or resume) a journaled hunt. The
//        [--budget N] [--seed S]      journal makes SIGKILL at any instant
//        [--snapshot-every K]         recoverable: re-running the same
//        [--workers W] [--fetches F]  command resumes from the last snapshot
//        [--smoke]                    and finishes to a byte-identical
//                                     corpus (tests/fault_search_test.cc).
//   show --corpus C                   print a corpus file with one replay
//                                     command per entry.
//
// Replay contract: every corpus schedule reproduces verdict-for-verdict via
//
//   ./build/example_conformance_probe "<client>" --schedule-hex <hex>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "clients/profiles.h"
#include "conformance/schedule.h"
#include "conformance/search.h"

using namespace lazyeye;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lazyeye_hunt hunt --journal <path> [--corpus <path>]\n"
      "         [--budget N] [--seed S] [--snapshot-every K] [--workers W]\n"
      "         [--fetches F] [--smoke]\n"
      "       lazyeye_hunt show --corpus <path>\n");
  return 2;
}

/// Strict numeric parsing: the whole token must be a base-10 number that
/// fits the destination, else false (no atoi-style silent zeroes).
bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    return false;
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int(const char* s, int lo, int hi, int& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > static_cast<std::uint64_t>(hi)) return false;
  if (static_cast<int>(v) < lo) return false;
  out = static_cast<int>(v);
  return true;
}

struct Args {
  std::string cmd;
  std::string journal;
  std::string corpus;
  std::uint64_t seed = 1;
  int budget = 64;
  int snapshot_every = 16;
  int workers = 1;
  int fetches = 2;
  bool smoke = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.cmd = argv[1];
  for (int a = 2; a < argc; ++a) {
    const auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    const char* value = nullptr;
    if (std::strcmp(argv[a], "--journal") == 0 && (value = next())) {
      args.journal = value;
    } else if (std::strcmp(argv[a], "--corpus") == 0 && (value = next())) {
      args.corpus = value;
    } else if (std::strcmp(argv[a], "--seed") == 0 && (value = next())) {
      if (!parse_u64(value, args.seed)) {
        std::fprintf(stderr, "bad --seed: %s\n", value);
        return false;
      }
    } else if (std::strcmp(argv[a], "--budget") == 0 && (value = next())) {
      if (!parse_int(value, 1, 1 << 20, args.budget)) {
        std::fprintf(stderr, "bad --budget: %s\n", value);
        return false;
      }
    } else if (std::strcmp(argv[a], "--snapshot-every") == 0 &&
               (value = next())) {
      if (!parse_int(value, 1, 1 << 20, args.snapshot_every)) {
        std::fprintf(stderr, "bad --snapshot-every: %s\n", value);
        return false;
      }
    } else if (std::strcmp(argv[a], "--workers") == 0 && (value = next())) {
      if (!parse_int(value, 1, 256, args.workers)) {
        std::fprintf(stderr, "bad --workers: %s\n", value);
        return false;
      }
    } else if (std::strcmp(argv[a], "--fetches") == 0 && (value = next())) {
      if (!parse_int(value, 1, 16, args.fetches)) {
        std::fprintf(stderr, "bad --fetches: %s\n", value);
        return false;
      }
    } else if (std::strcmp(argv[a], "--smoke") == 0) {
      args.smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[a]);
      return false;
    }
  }
  if (args.cmd == "hunt") return !args.journal.empty();
  if (args.cmd == "show") return !args.corpus.empty();
  return false;
}

int hunt(const Args& args) {
  conformance::HuntOptions options;
  options.seed = args.seed;
  options.budget = args.budget;
  options.snapshot_every = args.snapshot_every;
  options.workers = args.workers;
  options.fetches = args.fetches;
  options.journal_path = args.journal;
  options.conformance.seed = args.seed;

  std::vector<clients::ClientProfile> profiles =
      clients::local_testbed_profiles();
  if (args.smoke && profiles.size() > 3) profiles.resize(3);

  conformance::FaultHunt hunt{options, std::move(profiles)};
  const conformance::HuntResult result = hunt.run();

  std::printf(
      "hunt %s: %d candidates (seed %llu), %d violating, corpus %zu "
      "schedules, %zu coverage elements\n",
      result.resumed ? "resumed" : "complete", result.candidates,
      static_cast<unsigned long long>(args.seed), result.violating_candidates,
      result.corpus.size(), result.coverage.size());
  if (!args.corpus.empty()) {
    conformance::FaultHunt::write_corpus(args.corpus, result.corpus);
    std::printf("corpus written to %s\n", args.corpus.c_str());
  }
  return 0;
}

int show(const Args& args) {
  const std::vector<conformance::CorpusEntry> corpus =
      conformance::FaultHunt::load_corpus(args.corpus);
  std::printf("%zu corpus schedules in %s\n", corpus.size(),
              args.corpus.c_str());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const conformance::CorpusEntry& entry = corpus[i];
    std::printf("[%3zu] entries=%zu violations=%d%s\n", i,
                entry.schedule.entries.size(), entry.violations,
                entry.minimized ? " (minimized)" : "");
    std::printf("      replay: ./build/example_conformance_probe <client> "
                "--schedule-hex %s\n",
                conformance::schedule_to_hex(entry.schedule).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.cmd == "hunt") return hunt(args);
    if (args.cmd == "show") return show(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lazyeye_hunt: %s\n", e.what());
    return 1;
  }
  return usage();
}
