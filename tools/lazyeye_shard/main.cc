// lazyeye_shard: multi-process sharded execution of the conformance
// differential matrix, with per-shard crash journals.
//
// Subcommands:
//
//   run    --base B --shard K --shards N   one shard, journaled; resumes an
//                                          existing journal. The unit a
//                                          supervisor (or `launch`) runs per
//                                          OS process.
//   launch --base B --shards N             forks one `run` child per shard
//                                          (each with its own private
//                                          WorkerPool) and waits. Re-running
//                                          after a crash resumes every
//                                          incomplete shard.
//   merge  --base B --shards N [--out F]   validates the N complete shard
//                                          journals and re-establishes spec
//                                          order into the verdict table —
//                                          byte-identical to a
//                                          single-process run.
//   crashtest --base B --shards N          the kill-9 harness: repeatedly
//                                          forks the shard fleet, SIGKILLs
//                                          it mid-campaign at a varied
//                                          delay, resumes, merges, and
//                                          byte-compares every round's table
//                                          against an uninterrupted
//                                          in-process reference. Exits
//                                          non-zero on any mismatch.
//
// Fork safety: the parent never starts WorkerPool threads before forking
// (each child builds its own pool), and the crashtest computes its
// in-process reference AFTER all forking rounds for the same reason.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/journal.h"
#include "campaign/journal_sink.h"
#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/shard.h"
#include "campaign/sink.h"
#include "campaign/worker_pool.h"
#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/record_codec.h"
#include "util/clock.h"

using namespace lazyeye;

namespace {

struct Args {
  std::string cmd;
  std::string base;       // journal path base (and table output dir)
  std::string out;        // merge table output path
  int shards = 2;
  int shard = -1;         // `run` only
  int workers = 2;        // per shard
  int repetitions = 1;    // matrix scale (cells per fault kind multiplier)
  int rounds = 3;         // crashtest kill/resume rounds
  std::uint64_t seed = 1;
  std::uint64_t slow_ms = 0;  // per-cell wall slow-down (widens kill window)
  bool smoke = false;         // 3 profiles instead of the full pool
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lazyeye_shard <run|launch|merge|crashtest> --base <path>\n"
      "         [--shards N] [--shard K] [--workers W] [--reps R]\n"
      "         [--rounds C] [--seed S] [--slow-ms M] [--smoke]\n"
      "         [--out <table path>]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.cmd = argv[1];
  for (int a = 2; a < argc; ++a) {
    const auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : nullptr;
    };
    const char* value = nullptr;
    if (std::strcmp(argv[a], "--base") == 0 && (value = next())) {
      args.base = value;
    } else if (std::strcmp(argv[a], "--out") == 0 && (value = next())) {
      args.out = value;
    } else if (std::strcmp(argv[a], "--shards") == 0 && (value = next())) {
      args.shards = std::atoi(value);
    } else if (std::strcmp(argv[a], "--shard") == 0 && (value = next())) {
      args.shard = std::atoi(value);
    } else if (std::strcmp(argv[a], "--workers") == 0 && (value = next())) {
      args.workers = std::atoi(value);
    } else if (std::strcmp(argv[a], "--reps") == 0 && (value = next())) {
      args.repetitions = std::atoi(value);
    } else if (std::strcmp(argv[a], "--rounds") == 0 && (value = next())) {
      args.rounds = std::atoi(value);
    } else if (std::strcmp(argv[a], "--seed") == 0 && (value = next())) {
      args.seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[a], "--slow-ms") == 0 && (value = next())) {
      args.slow_ms = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[a], "--smoke") == 0) {
      args.smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[a]);
      return false;
    }
  }
  return !args.base.empty() && args.shards >= 1;
}

/// The shared campaign definition every subcommand (and every process)
/// derives identically from the CLI arguments.
struct Matrix {
  conformance::ConformanceHarness harness;
  std::vector<clients::ClientProfile> profiles;
  std::vector<campaign::ScenarioSpec> specs;
  std::uint64_t identity = 0;

  explicit Matrix(const Args& args)
      : harness{{.seed = args.seed}},
        profiles{clients::local_testbed_profiles()} {
    if (args.smoke && profiles.size() > 3) profiles.resize(3);
    specs = harness.differential_specs(profiles, args.repetitions);
    identity = campaign::journal_identity("conformance-differential",
                                          specs.size(), args.seed);
  }
};

campaign::JournalCodec<conformance::ConformanceRecord> record_codec() {
  return {
      .encode = [](const campaign::ScenarioSpec&,
                   const conformance::ConformanceRecord& record) {
        return conformance::encode_record(record);
      },
      .decode = [](std::string_view bytes) {
        return conformance::decode_record(bytes);
      },
  };
}

/// Discards cells — shard results live in the journal; merge rebuilds the
/// table from the journals alone.
class NullSink final
    : public campaign::ResultSink<conformance::ConformanceRecord> {
 public:
  void cell(const campaign::ScenarioSpec&,
            conformance::ConformanceRecord) override {}
};

/// Runs (or resumes) one shard's journaled sub-campaign in this process.
int run_shard(const Args& args, const Matrix& matrix) {
  const auto plan = campaign::shard_plan(matrix.specs.size(), args.shards);
  if (args.shard < 0 || args.shard >= args.shards) {
    std::fprintf(stderr, "run: --shard must be in [0, %d)\n", args.shards);
    return 2;
  }
  const campaign::ShardRange range = plan[static_cast<std::size_t>(args.shard)];

  campaign::Registry<conformance::ConformanceRecord> registry;
  conformance::register_conformance_executor(registry, matrix.harness,
                                             matrix.profiles);
  const std::uint64_t slow_ms = args.slow_ms;
  const std::function<conformance::ConformanceRecord(
      const campaign::ScenarioSpec&)>
      executor = [&registry, slow_ms](const campaign::ScenarioSpec& spec) {
        if (slow_ms > 0) util::sleep_for_ms(slow_ms);
        return registry.execute(spec);
      };

  // Each shard process owns a private pool: forked children must never
  // touch a pool whose threads lived in the parent.
  campaign::WorkerPool pool;
  campaign::RunnerOptions options;
  options.workers = args.workers;
  options.pool = &pool;
  const campaign::CampaignRunner runner{options};

  campaign::JournalOptions journal;
  journal.path = campaign::shard_journal_path(args.base, args.shard);
  journal.identity = matrix.identity;
  journal.cell_begin = range.begin;
  journal.cell_end = range.end;

  const auto codec = record_codec();
  NullSink sink;
  const campaign::SpecStream stream = campaign::SpecStream::view(matrix.specs);
  const campaign::JournaledRun result = campaign::run_journaled<
      conformance::ConformanceRecord>(runner, stream, executor, sink, journal,
                                      &codec);
  std::printf("shard %d: cells [%llu, %llu) %s (replayed %llu, ran %llu)\n",
              args.shard, static_cast<unsigned long long>(range.begin),
              static_cast<unsigned long long>(range.end),
              result.already_complete
                  ? "already complete"
                  : (result.resumed ? "resumed" : "fresh run"),
              static_cast<unsigned long long>(result.cells_replayed),
              static_cast<unsigned long long>(result.cells_run));
  return 0;
}

/// Forks one run_shard child per shard; returns the child pids.
std::vector<pid_t> fork_fleet(const Args& args, const Matrix& matrix) {
  std::vector<pid_t> pids;
  for (int shard = 0; shard < args.shards; ++shard) {
    std::fflush(nullptr);  // no duplicated stdio buffers in the children
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      Args child = args;
      child.shard = shard;
      const int rc = run_shard(child, matrix);
      std::fflush(nullptr);
      _exit(rc);  // never unwind into the parent's state
    }
    pids.push_back(pid);
  }
  return pids;
}

/// Waits for every child; returns true when all exited zero.
bool reap_fleet(const std::vector<pid_t>& pids, bool expect_clean) {
  bool ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
      std::perror("waitpid");
      ok = false;
      continue;
    }
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      if (expect_clean) {
        std::fprintf(stderr, "shard child %d exited abnormally (status %d)\n",
                     static_cast<int>(pid), status);
      }
      ok = false;
    }
  }
  return ok;
}

int launch(const Args& args, const Matrix& matrix) {
  const std::vector<pid_t> pids = fork_fleet(args, matrix);
  if (!reap_fleet(pids, /*expect_clean=*/true)) return 1;
  std::printf("launch: all %d shards complete\n", args.shards);
  return 0;
}

/// Merges the complete shard journals into the verdict table text.
std::string merge_table(const Args& args, const Matrix& matrix) {
  conformance::VerdictTableSink table;
  table.begin(matrix.specs.size());
  campaign::merge_shard_journals(
      args.base, args.shards, matrix.identity, matrix.specs.size(),
      [&table, &matrix](std::uint64_t index, std::string_view payload) {
        auto record = conformance::decode_record(payload);
        if (!record.has_value()) {
          throw campaign::JournalError(
              "merge: undecodable cell record at index " +
              std::to_string(index));
        }
        table.cell(matrix.specs[static_cast<std::size_t>(index)],
                   std::move(*record));
      },
      /*on_quarantine=*/nullptr);
  table.end();
  return table.text();
}

int merge(const Args& args, const Matrix& matrix) {
  const std::string table = merge_table(args, matrix);
  if (args.out.empty()) {
    std::fwrite(table.data(), 1, table.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fwrite(table.data(), 1, table.size(), f);
  std::fclose(f);
  std::printf("merge: wrote %zu cells to %s\n", matrix.specs.size(),
              args.out.c_str());
  return 0;
}

void remove_journals(const Args& args) {
  for (int shard = 0; shard < args.shards; ++shard) {
    std::remove(campaign::shard_journal_path(args.base, shard).c_str());
  }
}

bool all_shards_complete(const Args& args, const Matrix& matrix) {
  const auto plan = campaign::shard_plan(matrix.specs.size(), args.shards);
  for (const campaign::ShardRange& range : plan) {
    try {
      const campaign::JournalLoad load = campaign::load_journal(
          campaign::shard_journal_path(args.base, range.shard));
      if (!load.exists || !load.complete) return false;
    } catch (const campaign::JournalError&) {
      return false;
    }
  }
  return true;
}

/// The kill-9 acceptance harness (see file comment).
int crashtest(const Args& args, const Matrix& matrix) {
  std::printf("crashtest: %zu cells, %d shards, %d workers/shard, %d rounds\n",
              matrix.specs.size(), args.shards, args.workers, args.rounds);

  std::vector<std::string> tables;
  for (int round = 0; round < args.rounds; ++round) {
    remove_journals(args);
    // Varied, deterministic kill delay: early rounds kill almost
    // immediately (mid-first-cells), later rounds kill deeper into the run.
    const std::uint64_t kill_delay_ms = 3 + 13 * static_cast<std::uint64_t>(round);

    // Crash phase: fork the fleet, let it run ~kill_delay, SIGKILL it all.
    std::vector<pid_t> pids = fork_fleet(args, matrix);
    util::sleep_for_ms(kill_delay_ms);
    for (const pid_t pid : pids) kill(pid, SIGKILL);
    reap_fleet(pids, /*expect_clean=*/false);  // killed children: not clean

    // Resume phase: fork again, let every shard finish from its journal.
    // (A shard that happened to finish before the kill is already_complete.)
    int resumes = 0;
    while (!all_shards_complete(args, matrix)) {
      if (++resumes > 10) {
        std::fprintf(stderr, "crashtest: shards did not converge\n");
        return 1;
      }
      pids = fork_fleet(args, matrix);
      if (!reap_fleet(pids, /*expect_clean=*/true)) {
        std::fprintf(stderr, "crashtest: resume fleet failed\n");
        return 1;
      }
    }

    tables.push_back(merge_table(args, matrix));
    std::printf("  round %d: killed at ~%llu ms, resumed, merged %zu bytes\n",
                round, static_cast<unsigned long long>(kill_delay_ms),
                tables.back().size());
  }

  // Reference: an uninterrupted single-process run. Computed after ALL
  // forking (above) — it spins up pool threads, and forking a threaded
  // parent is undefined behaviour territory.
  campaign::Registry<conformance::ConformanceRecord> registry;
  conformance::register_conformance_executor(registry, matrix.harness,
                                             matrix.profiles);
  campaign::WorkerPool pool;
  campaign::RunnerOptions options;
  options.workers = args.workers;
  options.pool = &pool;
  const campaign::CampaignRunner runner{options};
  conformance::VerdictTableSink reference;
  registry.run(runner, matrix.specs, reference);

  bool ok = true;
  for (std::size_t round = 0; round < tables.size(); ++round) {
    if (tables[round] != reference.text()) {
      std::fprintf(stderr,
                   "crashtest FAILED: round %zu merged table (%zu bytes) != "
                   "uninterrupted reference (%zu bytes)\n",
                   round, tables[round].size(), reference.text().size());
      ok = false;
    }
  }
  remove_journals(args);
  if (!ok) return 1;
  std::printf(
      "crashtest PASSED: %d kill-9/resume rounds all merged byte-identical "
      "to the uninterrupted run (%zu bytes, %d violations)\n",
      args.rounds, reference.text().size(), reference.total_violations());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  try {
    const Matrix matrix{args};
    if (args.cmd == "run") return run_shard(args, matrix);
    if (args.cmd == "launch") return launch(args, matrix);
    if (args.cmd == "merge") return merge(args, matrix);
    if (args.cmd == "crashtest") return crashtest(args, matrix);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lazyeye_shard: %s\n", e.what());
    return 1;
  }
  return usage();
}
