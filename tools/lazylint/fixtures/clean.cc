// Fixture: lookalikes that must NOT be flagged by any rule, even when
// scanned under src/simnet/ where every rule is in scope.
//
// Words that are fine in comments: steady_clock, rand(), std::function,
// malloc, new, delete — prose is not code.
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Pool {
  void free(void* block);  // member named `free` is pool API, not libc
  void* data = nullptr;
};

struct Packet {
  std::string summary() const { return "rand() steady_clock new delete"; }
};

struct World {
  Pool pool;
  std::unordered_map<std::string, int> index;

  int lookup(const std::string& key) const {
    const auto it = index.find(key);  // find/count on unordered is fine
    return it == index.end() ? 0 : it->second;
  }

  bool known(const std::string& key) const { return index.count(key) > 0; }

  World(const World&) = delete;             // deleted function, not raw delete
  World& operator=(const World&) = delete;  // ditto
  World() = default;
};

struct Host {
  // A member function named `time` is legal; only the global/std call is
  // banned.
  long time_budget = 0;
  long time() const { return time_budget; }
};

inline void* construct_in(void* storage) {
  return ::new (storage) Packet{};  // placement new does not allocate
}

inline void recycle(Pool& pool, void* block) {
  pool.free(block);  // member call, not libc free
}

inline long read_host(const Host& h) { return h.time(); }

inline std::vector<std::string> sorted_names(const World& w,
                                             std::vector<std::string> keys) {
  // Deterministic pattern: iterate the *ordered* key list, look up each.
  std::vector<std::string> out;
  for (const std::string& k : keys) {
    if (w.known(k)) out.push_back(k);
  }
  return out;
}

}  // namespace fixture
