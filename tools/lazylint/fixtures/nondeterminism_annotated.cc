// Fixture: the same sources as nondeterminism_violation.cc, each carrying a
// reasoned suppression — the file must scan clean.
#include "util/time.h"

namespace fixture {

long wall_epoch() {
  return std::time(nullptr);  // lazylint: nondeterminism-ok(fixture exercises same-line suppression)
}

int entropy() {
  // lazylint: nondeterminism-ok(fixture exercises preceding-line suppression)
  std::random_device rd;
  return static_cast<int>(rd()) + rand();  // lazylint: nondeterminism-ok(fixture)
}

double jitter_seed() {
  const auto now = std::chrono::steady_clock::now();  // lazylint: nondeterminism-ok(fixture)
  return static_cast<double>(now.time_since_epoch().count());
}

const char* config_home() {
  return getenv("HOME");  // lazylint: nondeterminism-ok(fixture)
}

unsigned twister() {
  std::mt19937 gen{42};  // lazylint: nondeterminism-ok(fixture)
  return gen();
}

}  // namespace fixture
