// Fixture: every statement below must be flagged by `nondeterminism`.
#include "util/time.h"

namespace fixture {

long wall_epoch() {
  return std::time(nullptr);  // banned call form
}

int entropy() {
  std::random_device rd;  // banned identifier
  return static_cast<int>(rd()) + rand();  // banned unqualified call
}

double jitter_seed() {
  const auto now = std::chrono::steady_clock::now();  // banned identifier
  return static_cast<double>(now.time_since_epoch().count());
}

const char* config_home() {
  return getenv("HOME");  // banned identifier
}

unsigned twister() {
  std::mt19937 gen{42};  // banned identifier (std RNG, not the seeded Rng)
  return gen();
}

}  // namespace fixture
