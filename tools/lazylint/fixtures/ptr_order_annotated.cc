// Fixture: pointer-keyed ordered containers with reasoned suppressions —
// must scan clean.
#include <map>
#include <set>

namespace fixture {

struct Host;

struct World {
  std::map<Host*, int> host_ranks;  // lazylint: ptr-order-ok(never iterated, lookup only)
  // lazylint: ptr-order-ok(debug-only structure, not in any output path)
  std::set<const Host*> visited;
};

}  // namespace fixture
