// Fixture: every container below must be flagged by `ptr-order`.
#include <map>
#include <set>

namespace fixture {

struct Host;

struct World {
  std::map<Host*, int> host_ranks;        // ordered by address
  std::set<const Host*> visited;          // ordered by address
};

bool before(const Host* a, const Host* b) {
  return std::less<const Host*>{}(a, b);  // address comparison
}

}  // namespace fixture
