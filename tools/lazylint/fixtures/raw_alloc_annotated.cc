// Fixture: raw allocations with reasoned suppressions (cold paths,
// process-lifetime singletons) — must scan clean under src/simnet/.
#include <cstdlib>

namespace fixture {

struct Node {
  int value = 0;
};

Node* make_node() {
  return new Node{};  // lazylint: raw-alloc-ok(cold path, runs once per process)
}

void drop_node(Node* n) {
  // lazylint: raw-alloc-ok(paired with the cold-path new above)
  delete n;
}

void* scratch(std::size_t bytes) {
  return std::malloc(bytes);  // lazylint: raw-alloc-ok(fixture)
}

void release(void* p) {
  free(p);  // lazylint: raw-alloc-ok(fixture)
}

}  // namespace fixture
