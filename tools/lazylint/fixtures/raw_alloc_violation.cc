// Fixture: every allocation below must be flagged by `raw-alloc` when the
// file is scanned under src/simnet/ (pooled hot-path scope).
#include <cstdlib>

namespace fixture {

struct Node {
  int value = 0;
};

Node* make_node() {
  return new Node{};  // raw new
}

void drop_node(Node* n) {
  delete n;  // raw delete
}

void* scratch(std::size_t bytes) {
  return std::malloc(bytes);  // raw malloc
}

void release(void* p) {
  free(p);  // raw free
}

Node* try_node() {
  return new (std::nothrow) Node{};  // nothrow form still allocates
}

}  // namespace fixture
