// Fixture: std::function in the InlineFunction zone with reasoned
// suppressions — must scan clean under src/simnet/.
#include <functional>

namespace fixture {

struct Dispatcher {
  std::function<void(int)> on_event;  // lazylint: std-function-ok(cold config path, never per-packet)
};

// lazylint: std-function-ok(registration-time only; stored as InlineFunction)
void install(Dispatcher& d, std::function<void(int)> handler) {
  d.on_event = handler;
}

}  // namespace fixture
