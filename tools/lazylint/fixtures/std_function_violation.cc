// Fixture: every std::function below must be flagged by `std-function` when
// the file is scanned under src/simnet/ (InlineFunction-mandated zone).
#include <functional>

namespace fixture {

struct Dispatcher {
  std::function<void(int)> on_event;  // heap-spills per capture
};

void install(Dispatcher& d, std::function<void(int)> handler) {
  d.on_event = handler;
}

}  // namespace fixture
