// Fixture: unordered iteration with reasoned suppressions (e.g. the result
// feeds a sort before anything observable) — must scan clean.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Row {
  std::unordered_map<std::string, int> counts;
};

int sum_counts(const Row& row) {
  int total = 0;
  // lazylint: unordered-iter-ok(sum is order-independent)
  for (const auto& [name, value] : row.counts) {
    total += static_cast<int>(name.size()) + value;
  }
  return total;
}

std::vector<int> snapshot(const std::unordered_set<int>& live_ids) {
  std::vector<int> out;
  for (auto it = live_ids.begin(); it != live_ids.end(); ++it) {  // lazylint: unordered-iter-ok(sorted before return)
    out.push_back(*it);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fixture
