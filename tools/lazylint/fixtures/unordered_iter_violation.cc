// Fixture: every loop below must be flagged by `unordered-iter`.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Row {
  std::unordered_map<std::string, int> counts;
};

int sum_counts(const Row& row) {
  int total = 0;
  for (const auto& [name, value] : row.counts) {  // range-for, hash order
    total += static_cast<int>(name.size()) + value;
  }
  return total;
}

std::vector<int> snapshot(const std::unordered_set<int>& live_ids) {
  std::vector<int> out;
  for (auto it = live_ids.begin(); it != live_ids.end(); ++it) {  // iterator walk
    out.push_back(*it);
  }
  return out;
}

int first_key(const std::unordered_map<int, int>& table) {
  return begin(table)->first;  // free-function iterator walk
}

}  // namespace fixture
