// Fixture: the same sources as unseeded_rng_violation.cc, each carrying a
// reasoned suppression — the file must scan clean.
#include <cstdint>
#include <random>

#include "util/rng.h"

namespace fixture {

std::uint64_t splitmix_temporary() {
  return SplitMix64{}.next();  // lazylint: unseeded-rng-ok(fixture exercises same-line suppression)
}

std::uint64_t named_empty_brace() {
  // lazylint: unseeded-rng-ok(fixture exercises preceding-line suppression)
  SplitMix64 mix{};
  return mix.next();
}

std::uint64_t paren_temporary() {
  return lazyeye::Rng().next_u64();  // lazylint: unseeded-rng-ok(fixture)
}

int std_engine_bare_declaration() {
  std::minstd_rand eng;  // lazylint: unseeded-rng-ok(fixture)
  return static_cast<int>(eng());
}

double std_engine_empty_brace() {
  std::ranlux48 lux{};  // lazylint: unseeded-rng-ok(fixture)
  return static_cast<double>(lux());
}

std::uint64_t temporary_as_argument(std::uint64_t (*f)(SplitMix64)) {
  return f(SplitMix64{});  // lazylint: unseeded-rng-ok(fixture)
}

}  // namespace fixture
