// Fixture: engine lookalikes that must NOT be flagged by `unseeded-rng`,
// scanned under src/ where the rule is in scope. These mirror the legal
// patterns in the real tree: the engine class definitions themselves,
// seeded-by-init-list members, function declarations returning an engine,
// reference parameters, and explicitly seeded constructions.
#include <cstdint>
#include <random>

namespace fixture {

// Class definition, constructor declarations, and a method *returning* an
// engine by value (`Rng fork();` in util/rng.h is this shape).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_{seed} {}
  Rng(const Rng&) = default;
  Rng fork();
  std::uint64_t next_u64();

 private:
  std::uint64_t state_;
};

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_{seed} {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// Bare member declarations of the repo engines are legal: they have no
// default constructor, so the ctor init list must seed them.
struct Mixer {
  explicit Mixer(std::uint64_t seed) : rng_{seed}, mix_{seed} {}
  Rng rng_;
  SplitMix64 mix_;
};

// Reference/pointer parameters are seeded by the caller.
inline std::uint64_t draw(Rng& rng) { return rng.next_u64(); }
inline std::uint64_t peek(const SplitMix64* mix);
void reseed(std::minstd_rand& eng, std::uint64_t seed);

// Explicitly seeded constructions in every syntactic form.
inline std::uint64_t seeded_forms(std::uint64_t seed) {
  SplitMix64 mix{seed ^ 0x9e3779b97f4a7c15ULL};
  Rng rng{mix.next()};
  std::minstd_rand eng(static_cast<unsigned>(seed));
  return rng.next_u64() + Rng{mix.next()}.next_u64() + eng();
}

inline Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace fixture
