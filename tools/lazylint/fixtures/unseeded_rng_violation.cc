// Fixture: every construction below must be flagged by `unseeded-rng`.
#include <cstdint>
#include <random>

#include "util/rng.h"

namespace fixture {

std::uint64_t splitmix_temporary() {
  return SplitMix64{}.next();  // empty-brace temporary, no seed
}

std::uint64_t named_empty_brace() {
  SplitMix64 mix{};  // declared with an empty init list, no seed
  return mix.next();
}

std::uint64_t paren_temporary() {
  return lazyeye::Rng().next_u64();  // empty-paren temporary, no seed
}

int std_engine_bare_declaration() {
  std::minstd_rand eng;  // default-constructs from a silent fixed seed
  return static_cast<int>(eng());
}

double std_engine_empty_brace() {
  std::ranlux48 lux{};  // ditto, brace form
  return static_cast<double>(lux());
}

std::uint64_t temporary_as_argument(std::uint64_t (*f)(SplitMix64)) {
  return f(SplitMix64{});  // empty-brace temporary in a call argument
}

}  // namespace fixture
