#include "lint.h"

#include <algorithm>
#include <initializer_list>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace lazyeye::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ws_char(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/// Message builder that sidesteps gcc-12's -Wrestrict false positive on
/// `"literal" + std::string&&`.
std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view part : parts) out.append(part);
  return out;
}

/// Whole-identifier occurrence of `word` in `s` at or after `from`.
std::size_t find_ident(std::string_view s, std::string_view word,
                       std::size_t from = 0) {
  while (from < s.size()) {
    const std::size_t pos = s.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && ws_char(s[pos])) ++pos;
  return pos;
}

/// Last non-whitespace position strictly before `pos`, or npos.
std::size_t prev_nonws(std::string_view s, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!ws_char(s[pos])) return pos;
  }
  return std::string_view::npos;
}

/// True when the identifier starting at `pos` is a member access
/// (`x.name` / `x->name`).
bool is_member_access(std::string_view s, std::size_t pos) {
  const std::size_t p = prev_nonws(s, pos);
  if (p == std::string_view::npos) return false;
  if (s[p] == '.') return true;
  return s[p] == '>' && p > 0 && s[p - 1] == '-';
}

/// True when the call-form identifier at `pos` is a *declaration* of a
/// same-named function or member (a type token directly precedes it, e.g.
/// `long time() const`) rather than a call. Control keywords that legally
/// precede a call expression are not type tokens.
bool is_declaration_context(std::string_view s, std::size_t pos) {
  const std::size_t p = prev_nonws(s, pos);
  if (p == std::string_view::npos) return true;
  if (!ident_char(s[p])) return false;
  std::size_t begin = p;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  const std::string_view tok = s.substr(begin, p + 1 - begin);
  constexpr std::string_view kCallKeywords[] = {
      "return", "case", "throw", "else", "do",
      "co_return", "co_await", "co_yield",
  };
  return std::none_of(std::begin(kCallKeywords), std::end(kCallKeywords),
                      [&](std::string_view kw) { return kw == tok; });
}

/// For an identifier at `pos` preceded by `::`, extracts the qualifying
/// identifier (e.g. "std" in `std::rand`). Empty when unqualified.
std::string_view qualifier_before(std::string_view s, std::size_t pos) {
  std::size_t p = prev_nonws(s, pos);
  if (p == std::string_view::npos || s[p] != ':' || p == 0 || s[p - 1] != ':') {
    return {};
  }
  p = prev_nonws(s, p - 1);
  if (p == std::string_view::npos || !ident_char(s[p])) return {};
  std::size_t begin = p;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  return s.substr(begin, p + 1 - begin);
}

// ------------------------------------------------------------------------
// Comment / string stripping.
//
// Produces a same-length copy of the source with comment bodies and
// string/char literal contents blanked to spaces (newlines kept), so every
// rule matches code only — a banned token inside a doc comment or a log
// string is never a finding. Handles //, /*...*/, "..." with escapes,
// '...', and R"delim(...)delim" raw strings.
void strip_comments_and_strings(std::string_view src, std::string& code,
                                std::string& comments) {
  std::string out{src};
  std::string com(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') com[i] = '\n';
  }
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" for the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          const std::size_t open = src.find('(', i + 2);
          if (open != std::string_view::npos) {
            raw_close = ")";
            raw_close.append(src.substr(i + 2, open - (i + 2)));
            raw_close.push_back('"');
            for (std::size_t j = i; j <= open; ++j) out[j] = ' ';
            i = open;
            state = State::kRaw;
          }
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
          com[i] = c;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
          com[i] = c;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < src.size()) {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else {
          if (c != '\n') out[i] = ' ';
          if (c == close) state = State::kCode;
        }
        break;
      }
      case State::kRaw:
        if (src.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t j = 0; j < raw_close.size(); ++j) out[i + j] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  code = std::move(out);
  comments = std::move(com);
}

// ------------------------------------------------------------------------
// Per-file scan context.

struct Suppression {
  Rule rule = Rule::kSuppression;
  int decl_line = 0;
  bool has_reason = false;
  bool used = false;
  std::string bad_name;  // set when the rule name did not parse
};

struct FileScan {
  std::string_view path;
  std::string_view raw;
  std::string code;      // comment/string-stripped, same length as raw
  std::string comments;  // comment text only, same length as raw
  std::vector<std::size_t> line_starts;
  std::multimap<int, Suppression> suppressions;  // keyed by target line
  std::vector<Finding> findings;

  int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }

  std::string_view code_line(int line) const {  // 1-based
    const std::size_t begin = line_starts[static_cast<std::size_t>(line - 1)];
    const std::size_t end =
        static_cast<std::size_t>(line) < line_starts.size()
            ? line_starts[static_cast<std::size_t>(line)] - 1
            : code.size();
    return std::string_view{code}.substr(begin, end - begin);
  }

  std::string_view comment_line(int line) const {
    const std::size_t begin = line_starts[static_cast<std::size_t>(line - 1)];
    const std::size_t end =
        static_cast<std::size_t>(line) < line_starts.size()
            ? line_starts[static_cast<std::size_t>(line)] - 1
            : comments.size();
    return std::string_view{comments}.substr(begin, end - begin);
  }

  int line_count() const { return static_cast<int>(line_starts.size()); }

  bool line_has_code(int line) const {
    const std::string_view code_view = code_line(line);
    return std::any_of(code_view.begin(), code_view.end(),
                       [](char c) { return !ws_char(c); });
  }

  /// Reports `rule` at `offset` unless an in-scope suppression claims it.
  void emit(Rule rule, std::size_t offset, std::string message) {
    const int line = line_of(offset);
    auto [begin, end] = suppressions.equal_range(line);
    for (auto it = begin; it != end; ++it) {
      if (it->second.rule == rule) {
        it->second.used = true;
        return;
      }
    }
    findings.push_back(Finding{rule, std::string{path}, line,
                               std::move(message)});
  }
};

// Parses every `// lazylint: <rule>-ok(<reason>)` annotation. An annotation
// on a comment-only line targets the next line (so long statements can keep
// the explanation above them); otherwise it targets its own line.
void collect_suppressions(FileScan& scan) {
  constexpr std::string_view kMarker = "lazylint:";
  for (int line = 1; line <= scan.line_count(); ++line) {
    const std::string_view raw = scan.comment_line(line);
    std::size_t pos = raw.find(kMarker);
    if (pos == std::string_view::npos) continue;
    const int target = scan.line_has_code(line) ? line : line + 1;
    pos += kMarker.size();
    while (pos < raw.size()) {
      pos = skip_ws(raw, pos);
      // Rule names contain hyphens (`ptr-order`), so the name runs up to the
      // first `-ok(` suffix.
      constexpr std::string_view kOk = "-ok(";
      const std::size_t ok_at = raw.find(kOk, pos);
      if (ok_at == std::string_view::npos || ok_at == pos) break;
      const std::string_view name = raw.substr(pos, ok_at - pos);
      const bool name_ok =
          std::all_of(name.begin(), name.end(),
                      [](char c) { return ident_char(c) || c == '-'; });
      if (!name_ok) break;
      const std::size_t reason_begin = ok_at + kOk.size();
      const std::size_t reason_end = raw.find(')', reason_begin);
      if (reason_end == std::string_view::npos) break;
      std::string_view reason = raw.substr(reason_begin,
                                           reason_end - reason_begin);
      while (!reason.empty() && ws_char(reason.front())) reason.remove_prefix(1);
      Suppression s;
      s.decl_line = line;
      s.has_reason = !reason.empty();
      if (!rule_from_name(name, s.rule)) s.bad_name = std::string{name};
      scan.suppressions.emplace(target, s);
      pos = reason_end + 1;
    }
  }
}

void report_suppression_problems(FileScan& scan) {
  for (const auto& [target, s] : scan.suppressions) {
    if (!s.bad_name.empty()) {
      scan.findings.push_back(Finding{
          Rule::kSuppression, std::string{scan.path}, s.decl_line,
          cat({"unknown rule '", s.bad_name,
               "' in lazylint suppression"})});
    } else if (!s.has_reason) {
      scan.findings.push_back(Finding{
          Rule::kSuppression, std::string{scan.path}, s.decl_line,
          cat({"suppression for '", rule_name(s.rule),
               "' needs a non-empty reason"})});
    } else if (!s.used) {
      scan.findings.push_back(Finding{
          Rule::kSuppression, std::string{scan.path}, s.decl_line,
          cat({"unused suppression for '", rule_name(s.rule),
               "' (no matching finding)"})});
    }
  }
}

// ------------------------------------------------------------------------
// Rule: nondeterminism.

// Any mention is banned (these names are unambiguous).
constexpr std::string_view kBannedAnywhere[] = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "random_device", "gettimeofday", "clock_gettime",
    "getenv",        "secure_getenv", "srand",
    "srandom",       "rand_r",       "drand48",
    "lrand48",       "mt19937",      "mt19937_64",
};

// Banned only as a call of the global/std name (members and non-std
// qualified names like util::time stay legal).
constexpr std::string_view kBannedCalls[] = {"rand", "time", "clock",
                                             "random"};

void check_nondeterminism(FileScan& scan) {
  const std::string_view code = scan.code;
  for (const std::string_view word : kBannedAnywhere) {
    for (std::size_t pos = find_ident(code, word); pos != std::string_view::npos;
         pos = find_ident(code, word, pos + 1)) {
      scan.emit(Rule::kNondeterminism, pos,
                cat({"'", word,
                     "' is a wall-clock/entropy/environment source; use "
                     "SimTime and the seeded util/ Rng"}));
    }
  }
  for (const std::string_view word : kBannedCalls) {
    for (std::size_t pos = find_ident(code, word); pos != std::string_view::npos;
         pos = find_ident(code, word, pos + 1)) {
      const std::size_t after = skip_ws(code, pos + word.size());
      if (after >= code.size() || code[after] != '(') continue;
      if (is_member_access(code, pos)) continue;
      if (is_declaration_context(code, pos)) continue;
      const std::string_view qual = qualifier_before(code, pos);
      if (!qual.empty() && qual != "std") continue;
      scan.emit(Rule::kNondeterminism, pos,
                cat({"call to '", word,
                     "()' is nondeterministic; use SimTime and the seeded "
                     "util/ Rng"}));
    }
  }
}

// ------------------------------------------------------------------------
// Rule: unordered-iter.

/// Names declared with an unordered container type in this file (the
/// identifier after the template argument list on a declaration line).
std::vector<std::string> unordered_decl_names(const FileScan& scan) {
  std::vector<std::string> names;
  for (int line = 1; line <= scan.line_count(); ++line) {
    const std::string_view code_view = scan.code_line(line);
    if (find_ident(code_view, "unordered_map") == std::string_view::npos &&
        find_ident(code_view, "unordered_set") == std::string_view::npos &&
        find_ident(code_view, "unordered_multimap") ==
            std::string_view::npos &&
        find_ident(code_view, "unordered_multiset") ==
            std::string_view::npos) {
      continue;
    }
    const std::size_t close = code_view.rfind('>');
    if (close == std::string_view::npos) continue;
    std::size_t pos = close + 1;
    while (pos < code_view.size() && !ident_char(code_view[pos])) {
      // A declarator never crosses these; `>::iterator it` etc. stays out.
      if (code_view[pos] == ';' || code_view[pos] == ':' ||
          code_view[pos] == '(') {
        pos = code_view.size();
        break;
      }
      ++pos;
    }
    std::size_t end = pos;
    while (end < code_view.size() && ident_char(code_view[end])) ++end;
    if (end > pos) names.emplace_back(code_view.substr(pos, end - pos));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void check_unordered_iter(FileScan& scan) {
  const std::string_view code = scan.code;
  const std::vector<std::string> names = unordered_decl_names(scan);

  auto range_mentions_unordered = [&](std::string_view range_expr) {
    if (range_expr.find("unordered_") != std::string_view::npos) return true;
    return std::any_of(names.begin(), names.end(), [&](const std::string& n) {
      return find_ident(range_expr, n) != std::string_view::npos;
    });
  };

  // Range-for whose range expression names an unordered container.
  for (std::size_t pos = find_ident(code, "for"); pos != std::string_view::npos;
       pos = find_ident(code, "for", pos + 1)) {
    std::size_t open = skip_ws(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string_view::npos) {
        const bool double_colon =
            (i + 1 < code.size() && code[i + 1] == ':') ||
            (i > 0 && code[i - 1] == ':');
        if (!double_colon) colon = i;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos) {
      continue;
    }
    const std::string_view range_expr =
        code.substr(colon + 1, close - colon - 1);
    if (range_mentions_unordered(range_expr)) {
      scan.emit(Rule::kUnorderedIter, pos,
                "range-for over an unordered container leaks hash order; "
                "iterate a deterministically ordered copy or index instead");
    }
  }

  // Explicit iterator walks: name.begin() / name->begin() / begin(name).
  constexpr std::string_view kIterStarts[] = {"begin", "cbegin", "rbegin",
                                              "crbegin"};
  for (const std::string& name : names) {
    for (std::size_t pos = find_ident(code, name);
         pos != std::string_view::npos;
         pos = find_ident(code, name, pos + 1)) {
      std::size_t after = skip_ws(code, pos + name.size());
      bool member = false;
      if (after < code.size() && code[after] == '.') {
        member = true;
        ++after;
      } else if (after + 1 < code.size() && code[after] == '-' &&
                 code[after + 1] == '>') {
        member = true;
        after += 2;
      }
      if (!member) continue;
      after = skip_ws(code, after);
      for (const std::string_view fn : kIterStarts) {
        if (code.compare(after, fn.size(), fn) == 0 &&
            skip_ws(code, after + fn.size()) < code.size() &&
            code[skip_ws(code, after + fn.size())] == '(') {
          scan.emit(Rule::kUnorderedIter, pos,
                    cat({"iterator walk over unordered container '", name,
                         "' leaks hash order"}));
          break;
        }
      }
    }
  }
  for (const std::string_view fn : kIterStarts) {
    for (std::size_t pos = find_ident(code, fn); pos != std::string_view::npos;
         pos = find_ident(code, fn, pos + 1)) {
      if (is_member_access(code, pos)) continue;  // handled above
      const std::size_t open = skip_ws(code, pos + fn.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t arg_begin = skip_ws(code, open + 1);
      std::size_t arg_end = arg_begin;
      while (arg_end < code.size() && ident_char(code[arg_end])) ++arg_end;
      const std::string arg{code.substr(arg_begin, arg_end - arg_begin)};
      if (std::find(names.begin(), names.end(), arg) != names.end() &&
          skip_ws(code, arg_end) < code.size() &&
          code[skip_ws(code, arg_end)] == ')') {
        scan.emit(Rule::kUnorderedIter, pos,
                  cat({"iterator walk over unordered container '", arg,
                       "' leaks hash order"}));
      }
    }
  }
}

// ------------------------------------------------------------------------
// Rule: ptr-order.

/// First template argument after the '<' at `open`, or empty.
std::string_view first_template_arg(std::string_view code, std::size_t open) {
  int depth = 1;
  const std::size_t begin = open + 1;
  for (std::size_t i = begin; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<' || c == '(') {
      ++depth;
    } else if (c == '>' || c == ')') {
      --depth;
    }
    if ((c == ',' && depth == 1) || depth == 0) {
      return code.substr(begin, i - begin);
    }
    if (c == ';') break;
  }
  return {};
}

void check_ptr_order(FileScan& scan) {
  const std::string_view code = scan.code;
  constexpr std::string_view kOrdered[] = {"map", "set", "multimap",
                                           "multiset", "less", "greater"};
  for (const std::string_view word : kOrdered) {
    for (std::size_t pos = find_ident(code, word); pos != std::string_view::npos;
         pos = find_ident(code, word, pos + 1)) {
      const std::size_t open = skip_ws(code, pos + word.size());
      if (open >= code.size() || code[open] != '<') continue;
      std::string_view arg = first_template_arg(code, open);
      while (!arg.empty() && ws_char(arg.back())) arg.remove_suffix(1);
      if (arg.empty() || arg.back() != '*') continue;
      scan.emit(Rule::kPtrOrder, pos,
                cat({"'", word, "<", arg,
                     ", ...>' orders by raw pointer value, which differs "
                     "run to run; key by a stable id instead"}));
    }
  }
}

// ------------------------------------------------------------------------
// Rule: raw-alloc.

void check_raw_alloc(FileScan& scan) {
  const std::string_view code = scan.code;
  for (std::size_t pos = find_ident(code, "new"); pos != std::string_view::npos;
       pos = find_ident(code, "new", pos + 1)) {
    const std::size_t after = skip_ws(code, pos + 3);
    if (after < code.size() && code[after] == '(') {
      // Placement form: constructs into caller-provided storage and does not
      // allocate — except the nothrow forms, which do.
      const std::size_t close = code.find(')', after);
      const std::string_view args =
          close == std::string_view::npos
              ? std::string_view{}
              : code.substr(after, close - after);
      if (args.find("nothrow") == std::string_view::npos) continue;
    }
    scan.emit(Rule::kRawAlloc, pos,
              "raw 'new' in a pooled hot path; allocate from the world's "
              "Arena/BufferPool/MessagePool instead");
  }
  for (std::size_t pos = find_ident(code, "delete");
       pos != std::string_view::npos;
       pos = find_ident(code, "delete", pos + 1)) {
    const std::size_t prev = prev_nonws(code, pos);
    if (prev != std::string_view::npos && code[prev] == '=') continue;
    scan.emit(Rule::kRawAlloc, pos,
              "raw 'delete' in a pooled hot path; pooled storage is "
              "released by its pool/arena, not by hand");
  }
  constexpr std::string_view kAllocCalls[] = {
      "malloc", "calloc",        "realloc",        "free",
      "strdup", "aligned_alloc", "posix_memalign",
  };
  for (const std::string_view word : kAllocCalls) {
    for (std::size_t pos = find_ident(code, word); pos != std::string_view::npos;
         pos = find_ident(code, word, pos + 1)) {
      const std::size_t after = skip_ws(code, pos + word.size());
      if (after >= code.size() || code[after] != '(') continue;
      if (is_member_access(code, pos)) continue;  // pool.free(...) etc.
      if (is_declaration_context(code, pos)) continue;  // void free(void*);
      const std::string_view qual = qualifier_before(code, pos);
      if (!qual.empty() && qual != "std") continue;
      scan.emit(Rule::kRawAlloc, pos,
                cat({"'", word,
                     "()' in a pooled hot path; allocate from the world's "
                     "Arena/BufferPool/MessagePool instead"}));
    }
  }
}

// ------------------------------------------------------------------------
// Rule: unseeded-rng.

// The repo's engines require an explicit seed by construction (no default
// ctor), so here the rule is a source-level tripwire against anyone adding
// a default-seeded path later; the std engines below *do* default-construct
// from a fixed implementation seed today. (mt19937/mt19937_64 are already
// banned outright by the nondeterminism rule.)
constexpr std::string_view kRepoEngines[] = {"SplitMix64", "Rng"};
constexpr std::string_view kStdEngines[] = {
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "knuth_b",       "ranlux24",     "ranlux48",
    "ranlux24_base", "ranlux48_base",
};

/// True when the first non-ws char after `open` closes the group — i.e. the
/// constructor argument list is empty.
bool empty_group(std::string_view code, std::size_t open, char close) {
  const std::size_t p = skip_ws(code, open + 1);
  return p < code.size() && code[p] == close;
}

/// True when an `Engine(...)` / `Engine{...}` token at `pos` sits in
/// expression position (a temporary is being constructed) rather than in a
/// declaration (constructor declarations inside the engine's own class body,
/// `Engine() = default;`, etc.).
bool engine_expression_context(std::string_view code, std::size_t pos) {
  const std::size_t p = prev_nonws(code, pos);
  if (p == std::string_view::npos) return false;
  // Step back over a `qual::` prefix (`util::Rng{}`) and judge the token in
  // front of the qualifier instead.
  if (code[p] == ':' && p > 0 && code[p - 1] == ':') {
    const std::size_t q = prev_nonws(code, p - 1);
    if (q == std::string_view::npos || !ident_char(code[q])) return false;
    std::size_t begin = q;
    while (begin > 0 && ident_char(code[begin - 1])) --begin;
    return engine_expression_context(code, begin);
  }
  const char c = code[p];
  if (c == '=' || c == '(' || c == ',') return true;
  if (!ident_char(c)) return false;
  std::size_t begin = p;
  while (begin > 0 && ident_char(code[begin - 1])) --begin;
  const std::string_view tok = code.substr(begin, p + 1 - begin);
  return tok == "return" || tok == "co_return" || tok == "co_yield";
}

/// Scans for constructions of one engine type. `default_seeds` marks std
/// engines whose *bare* declaration (`std::minstd_rand eng;`) already
/// constructs from a silent default seed; the repo engines have no default
/// ctor, so a bare declaration there is a member seeded by its ctor init
/// list and stays legal.
void check_engine(FileScan& scan, std::string_view word, bool default_seeds) {
  const std::string_view code = scan.code;
  for (std::size_t pos = find_ident(code, word); pos != std::string_view::npos;
       pos = find_ident(code, word, pos + 1)) {
    if (is_member_access(code, pos)) continue;
    // `class Rng {`, `using Rng;`, forward declarations, friend decls.
    const std::size_t prev = prev_nonws(code, pos);
    if (prev != std::string_view::npos && ident_char(code[prev])) {
      std::size_t begin = prev;
      while (begin > 0 && ident_char(code[begin - 1])) --begin;
      const std::string_view tok = code.substr(begin, prev + 1 - begin);
      if (tok == "class" || tok == "struct" || tok == "typename" ||
          tok == "using" || tok == "friend") {
        continue;
      }
    }
    const std::size_t after = skip_ws(code, pos + word.size());
    if (after >= code.size()) continue;
    const char c = code[after];
    if (c == '(' || c == '{') {
      // Temporary or constructor declaration. Only an *empty* argument list
      // in expression position is an unseeded construction.
      if (!empty_group(code, after, c == '(' ? ')' : '}')) continue;
      if (!engine_expression_context(code, pos)) continue;
      scan.emit(Rule::kUnseededRng, pos,
                cat({"'", word,
                     "' temporary constructed without a seed; derive one "
                     "from the campaign (seed, stream, index) tuple"}));
      continue;
    }
    // `Rng&` / `Rng*` parameters, `Rng;` type mentions, `Rng::` scope
    // accesses, `Rng>` template args are not constructions.
    if (!ident_char(c)) continue;
    std::size_t name_end = after;
    while (name_end < code.size() && ident_char(code[name_end])) ++name_end;
    const std::size_t next = skip_ws(code, name_end);
    if (next >= code.size()) continue;
    if (code[next] == '{') {
      if (empty_group(code, next, '}')) {
        scan.emit(Rule::kUnseededRng, pos,
                  cat({"'", word, " ", code.substr(after, name_end - after),
                       "{}' is declared without a seed; derive one from the "
                       "campaign (seed, stream, index) tuple"}));
      }
      continue;
    }
    if (code[next] == ';' && default_seeds) {
      scan.emit(Rule::kUnseededRng, pos,
                cat({"'", word, " ", code.substr(after, name_end - after),
                     ";' default-constructs from a silent implementation "
                     "seed; pass an explicit seed derived from the campaign "
                     "(seed, stream, index) tuple"}));
    }
    // `Engine name(args)` is seeded, `Engine name()` is a function
    // declaration, `Engine name,` / `Engine name)` are parameters the
    // caller seeds.
  }
}

void check_unseeded_rng(FileScan& scan) {
  for (const std::string_view word : kRepoEngines) {
    check_engine(scan, word, /*default_seeds=*/false);
  }
  for (const std::string_view word : kStdEngines) {
    check_engine(scan, word, /*default_seeds=*/true);
  }
}

// ------------------------------------------------------------------------
// Rule: std-function.

void check_std_function(FileScan& scan) {
  const std::string_view code = scan.code;
  for (std::size_t pos = find_ident(code, "std"); pos != std::string_view::npos;
       pos = find_ident(code, "std", pos + 1)) {
    std::size_t p = skip_ws(code, pos + 3);
    if (p + 1 >= code.size() || code[p] != ':' || code[p + 1] != ':') continue;
    p = skip_ws(code, p + 2);
    if (find_ident(code.substr(p, 9), "function") != 0) continue;
    scan.emit(Rule::kStdFunction, pos,
              "std::function in the simnet hot path; InlineFunction is "
              "mandated here (64-byte SBO, no per-capture heap spill)");
  }
}

// ------------------------------------------------------------------------
// Scoping.

std::string normalize(std::string_view rel_path) {
  std::string p{rel_path};
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Files allowed to use raw allocation inside the pooled hot-path
/// directories: these *are* the arena/pool/SBO implementations the rule
/// funnels everything else through.
constexpr std::string_view kRawAllocExempt[] = {
    "src/simnet/arena.h",        "src/simnet/buffer.h",
    "src/simnet/scenario_pool.h", "src/simnet/inline_callback.h",
    "src/dns/message_pool.h",
};

struct RuleScope {
  bool nondeterminism = false;
  bool unordered_iter = false;
  bool ptr_order = false;
  bool raw_alloc = false;
  bool std_function = false;
  bool unseeded_rng = false;
};

RuleScope scope_for(std::string_view path) {
  RuleScope scope;
  scope.unordered_iter = true;
  scope.ptr_order = true;
  scope.nondeterminism =
      starts_with(path, "src/") && !starts_with(path, "src/util/");
  const bool pooled_dir = starts_with(path, "src/simnet/") ||
                          starts_with(path, "src/dns/") ||
                          starts_with(path, "src/transport/");
  scope.raw_alloc =
      pooled_dir && std::none_of(std::begin(kRawAllocExempt),
                                 std::end(kRawAllocExempt),
                                 [&](std::string_view f) { return f == path; });
  scope.std_function = starts_with(path, "src/simnet/") &&
                       path != "src/simnet/inline_callback.h";
  // Unlike nondeterminism, src/util/ is in scope: the engine implementations
  // themselves must thread seeds explicitly.
  scope.unseeded_rng = starts_with(path, "src/");
  return scope;
}

}  // namespace

std::string_view rule_name(Rule rule) {
  switch (rule) {
    case Rule::kNondeterminism: return "nondeterminism";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kPtrOrder: return "ptr-order";
    case Rule::kRawAlloc: return "raw-alloc";
    case Rule::kStdFunction: return "std-function";
    case Rule::kUnseededRng: return "unseeded-rng";
    case Rule::kSuppression: return "suppression";
  }
  return "unknown";
}

bool rule_from_name(std::string_view name, Rule& out) {
  constexpr Rule kAll[] = {Rule::kNondeterminism, Rule::kUnorderedIter,
                           Rule::kPtrOrder, Rule::kRawAlloc,
                           Rule::kStdFunction, Rule::kUnseededRng};
  for (const Rule r : kAll) {
    if (rule_name(r) == name) {
      out = r;
      return true;
    }
  }
  return false;
}

std::vector<Finding> scan_source(std::string_view rel_path,
                                 std::string_view content) {
  const std::string path = normalize(rel_path);
  FileScan scan;
  scan.path = path;
  scan.raw = content;
  strip_comments_and_strings(content, scan.code, scan.comments);
  scan.line_starts.push_back(0);
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') scan.line_starts.push_back(i + 1);
  }

  // Blank preprocessor directives: `#include <new>` or `#include <random>`
  // name banned tokens without using them (any use in code is still caught).
  for (std::size_t start : scan.line_starts) {
    std::size_t p = start;
    while (p < scan.code.size() && (scan.code[p] == ' ' || scan.code[p] == '\t')) {
      ++p;
    }
    if (p >= scan.code.size() || scan.code[p] != '#') continue;
    while (p < scan.code.size() && scan.code[p] != '\n') {
      scan.code[p++] = ' ';
    }
  }

  collect_suppressions(scan);

  const RuleScope scope = scope_for(path);
  if (scope.nondeterminism) check_nondeterminism(scan);
  if (scope.unordered_iter) check_unordered_iter(scan);
  if (scope.ptr_order) check_ptr_order(scan);
  if (scope.raw_alloc) check_raw_alloc(scan);
  if (scope.std_function) check_std_function(scan);
  if (scope.unseeded_rng) check_unseeded_rng(scan);

  report_suppression_problems(scan);

  std::sort(scan.findings.begin(), scan.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line
                                      : a.message < b.message;
            });
  return std::move(scan.findings);
}

TreeReport scan_tree(const std::string& root) {
  namespace fs = std::filesystem;
  TreeReport report;
  constexpr std::string_view kDirs[] = {"src", "bench", "tests", "examples"};
  constexpr std::string_view kExts[] = {".h", ".cc", ".hpp", ".cpp"};
  std::vector<fs::path> files;
  for (const std::string_view dir : kDirs) {
    const fs::path base = fs::path{root} / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator{base}) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(std::begin(kExts), std::end(kExts), ext) ==
          std::end(kExts)) {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const std::string rel =
        fs::relative(file, fs::path{root}).generic_string();
    std::vector<Finding> findings = scan_source(rel, content);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    ++report.files_scanned;
  }
  return report;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out.append(f.file);
    out.push_back(':');
    out.append(std::to_string(f.line));
    out.append(": ");
    out.append(rule_name(f.rule));
    out.append(": ");
    out.append(f.message);
    out.push_back('\n');
  }
  return out;
}

}  // namespace lazyeye::lint
