// lazylint: repo-specific determinism & hot-path discipline linter.
//
// A token/line-level scanner (no libclang) that enforces the invariants the
// reproduction's claims rest on — byte-identical campaign output at any
// worker count, one-line (seed, stream, index) replay, count-based perf
// gates. Runtime byte-diff checks catch a violation long after the commit
// that introduced it; these rules fail the build at the offending source
// line instead.
//
// Rules (each scoped to the directories where the invariant is mandated):
//   nondeterminism  src/ minus src/util/ — no wall clocks, entropy sources,
//                   or environment reads; all time is SimTime, all
//                   randomness is the seeded util/ Rng.
//   unordered-iter  everywhere — no iteration (range-for or iterator walks)
//                   over unordered containers; hash order must never leak
//                   into sinks, captures, or aggregate output.
//   ptr-order       everywhere — no ordered containers or comparators keyed
//                   by raw pointer value; addresses differ run to run.
//   raw-alloc       src/{simnet,dns,transport} minus the arena/pool
//                   implementations — no raw new/delete/malloc in the pooled
//                   hot paths; backs the count-based allocation gates with a
//                   source-level gate.
//   std-function    src/simnet — InlineFunction is mandated on the event and
//                   dispatch paths; std::function heap-spills per capture.
//   unseeded-rng    src/ — every RNG engine construction (SplitMix64, Rng,
//                   and the std engines the nondeterminism rule does not
//                   already ban) must carry an explicit seed argument; a
//                   default-constructed engine draws from a silent
//                   implementation seed and breaks (seed, stream, index)
//                   replay.
//
// Suppression is inline only:  // lazylint: <rule>-ok(<reason>)
// on the offending line, or on an immediately preceding comment-only line.
// A suppression with an empty reason, an unknown rule name, or no matching
// finding is itself reported, so the tree never accumulates stale or
// unexplained escapes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lazyeye::lint {

enum class Rule {
  kNondeterminism,
  kUnorderedIter,
  kPtrOrder,
  kRawAlloc,
  kStdFunction,
  kUnseededRng,
  kSuppression,  // malformed / unused suppression annotations
};

/// Stable rule identifier used in suppressions and reports.
std::string_view rule_name(Rule rule);

/// Parses a rule identifier; returns false for unknown names.
bool rule_from_name(std::string_view name, Rule& out);

struct Finding {
  Rule rule = Rule::kSuppression;
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string message;
};

/// Scans one source file. `rel_path` (repo-relative, forward slashes)
/// selects which rules apply; `content` is the file's full text.
std::vector<Finding> scan_source(std::string_view rel_path,
                                 std::string_view content);

struct TreeReport {
  std::vector<Finding> findings;  // sorted by (file, line)
  int files_scanned = 0;
};

/// Scans src/, bench/, tests/, and examples/ under `root` (every .h/.cc/
/// .hpp/.cpp file). Missing directories are skipped.
TreeReport scan_tree(const std::string& root);

/// "file:line: rule: message" lines, one per finding.
std::string format_findings(const std::vector<Finding>& findings);

}  // namespace lazyeye::lint
