// lazylint CLI: scans the repo tree and exits non-zero on any finding.
//
// Usage:
//   lazylint [--root <dir>] [--list-rules]
//
// Scans src/, bench/, tests/, and examples/ under --root (default: the
// current directory) and prints one `file:line: rule: message` line per
// finding. See tools/lazylint/lint.h for the rule set and the inline
// suppression syntax.
#include <cstdio>
#include <string>

#include "lint.h"

namespace {

void print_rules() {
  using lazyeye::lint::Rule;
  constexpr struct {
    Rule rule;
    const char* summary;
  } kRules[] = {
      {Rule::kNondeterminism,
       "wall clocks / entropy / environment reads in src/ (util/ exempt)"},
      {Rule::kUnorderedIter,
       "iteration over unordered containers (hash-order leaks)"},
      {Rule::kPtrOrder, "ordered containers/comparators keyed by raw pointer"},
      {Rule::kRawAlloc,
       "raw new/delete/malloc in src/{simnet,dns,transport} hot paths"},
      {Rule::kStdFunction, "std::function in src/simnet (InlineFunction zone)"},
  };
  for (const auto& r : kRules) {
    std::printf("%-15s %s\n",
                std::string{lazyeye::lint::rule_name(r.rule)}.c_str(),
                r.summary);
  }
  std::printf("\nsuppress with: // lazylint: <rule>-ok(<reason>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else {
      std::fprintf(stderr, "usage: lazylint [--root <dir>] [--list-rules]\n");
      return 2;
    }
  }

  const lazyeye::lint::TreeReport report = lazyeye::lint::scan_tree(root);
  const std::string rendered =
      lazyeye::lint::format_findings(report.findings);
  std::fputs(rendered.c_str(), stdout);
  std::printf("lazylint: %zu finding%s in %d files\n", report.findings.size(),
              report.findings.size() == 1 ? "" : "s", report.files_scanned);
  return report.findings.empty() ? 0 : 1;
}
